#include "vm/machine.hh"

#include <chrono>
#include <utility>

#include "driver/kernel_driver.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "vm/decode_cache.hh"
#include "vm/vm_stats.hh"

namespace stm
{

namespace
{

/** Synthetic library code addresses, one small region per LibFn. */
Addr
libPc(LibFn fn, std::uint32_t off = 0)
{
    return layout::kLibraryBase +
           0x100 * static_cast<Addr>(fn) + 4 * off;
}

} // namespace

Machine::Machine(ProgramPtr prog, MachineOptions opts,
                 std::shared_ptr<const Instrumentation> overlay)
    : prog_(std::move(prog)),
      opts_(std::move(opts)),
      overlayHold_(std::move(overlay)),
      rng_(opts_.sched.seed, 7),
      bus_(opts_.cache),
      lcr_(opts_.lcrEntries)
{
    if (!prog_)
        fatal("Machine requires a program");
    instr_ = overlayHold_ ? overlayHold_.get()
                          : &prog_->instrumentation;
    globalsEnd_ = prog_->globalsEnd();
}

Machine::Machine(ProgramPtr prog, MachineOptions opts,
                 std::shared_ptr<const Instrumentation> overlay,
                 MachineCheckpointPtr resume_from)
    : Machine(std::move(prog), std::move(opts), std::move(overlay))
{
    resumeFrom_ = std::move(resume_from);
    if (!resumeFrom_)
        fatal("Machine resume constructor requires a checkpoint");
}

Machine::~Machine() = default;

Pmu &
Machine::pmuOf(ThreadId tid)
{
    if (tid >= pmus_.size())
        panic("no PMU for thread {}", tid);
    return *pmus_[tid];
}

Thread &
Machine::threadRef(ThreadId tid)
{
    if (tid >= threads_.size())
        panic("no thread {}", tid);
    return *threads_[tid];
}

void
Machine::chargeKernel(ThreadId tid, std::uint64_t instrs,
                      std::uint32_t branches)
{
    result_.stats.kernelInstructions += instrs;
    // Kernel work retires ring-0 conditional branches; whether they
    // land in LBR depends on the ring-0 filter bit.
    Pmu &pmu = pmuOf(tid);
    for (std::uint32_t i = 0; i < branches; ++i) {
        BranchRecord record;
        record.fromIp = layout::kKernelText + 8 * i;
        record.toIp = layout::kKernelText + 8 * i + 4;
        record.kind = BranchKind::Conditional;
        record.kernel = true;
        pmu.retireBranch(record);
    }
}

void
Machine::chargeUser(std::uint64_t instrs)
{
    result_.stats.userInstructions += instrs;
}

void
Machine::chargeInstrumentation(std::uint64_t instrs)
{
    result_.stats.instrumentationInstructions += instrs;
}

void
Machine::appendProfile(ProfileRecord record)
{
    result_.profiles.push_back(std::move(record));
}

bool
Machine::validAddress(ThreadId tid, Addr addr) const
{
    (void)tid; // any thread may touch any mapped segment
    // Unsigned subtract-and-compare covers both segment bounds at
    // once; live stacks form one contiguous span because thread ids
    // are dense and each owns kStackSize bytes.
    if (addr - layout::kGlobalBase < globalsEnd_ - layout::kGlobalBase)
        return true;
    if (addr - layout::kHeapBase < heapBrk_ - layout::kHeapBase)
        return true;
    return addr - layout::kStackBase < stackSpan_;
}

void
Machine::raiseSegfault(ThreadId tid, const std::string &message)
{
    profileOnFault(tid);
    endRun(RunOutcome::SegFault, tid, threadRef(tid).pc, kSegfaultSite,
           message);
}

bool
Machine::dataAccess(ThreadId tid, Addr pc, Addr addr, bool is_store,
                    Word *value_in_out, bool kernel)
{
    if (!validAddress(tid, addr)) [[unlikely]] {
        raiseSegfault(tid, strfmt("invalid {} at address 0x{}",
                                  is_store ? "store" : "load", addr));
        return false;
    }
    MesiState observed = bus_.access(tid, addr, is_store);

    CoherenceEvent event;
    event.pc = pc;
    event.observed = observed;
    event.store = is_store;
    event.kernel = kernel;
    lcr_.retire(tid, event);
    pmus_[tid]->observeAccess(event);
    ++result_.stats.memoryAccesses;

    // CCI baseline: heavyweight software sampling of interleaving
    // predicates at (user, application-code) memory accesses.
    if (cciEnabled_ && !kernel && pc >= layout::kCodeBase &&
        pc < layout::kLibraryBase) [[unlikely]] {
        const Instrumentation &instr = *instr_;
        chargeInstrumentation(5); // per-access fast path
        Thread &t = threadRef(tid);
        if (t.cciCountdown == 0)
            t.cciCountdown = rng_.nextGeometric(instr.cciMeanPeriod);
        if (--t.cciCountdown == 0) {
            t.cciCountdown = rng_.nextGeometric(instr.cciMeanPeriod);
            chargeInstrumentation(20);
            bool remote = observed == MesiState::Invalid ||
                          observed == MesiState::Shared;
            ++result_.cciSiteSamples[pc];
            ++result_.cciCounts[{pc, remote}];
        }
    }

    Addr cell = addr & ~Addr{7};
    if (is_store)
        memory_.store(cell, *value_in_out);
    else
        *value_in_out = memory_.load(cell);
    return true;
}

void
Machine::retireLibraryBranch(ThreadId tid, Addr from_ip, Addr to_ip)
{
    BranchRecord record;
    record.fromIp = from_ip;
    record.toIp = to_ip;
    record.kind = BranchKind::Conditional;
    record.kernel = false;
    pmuOf(tid).retireBranch(record);
    chargeInstrumentation(bts_.retire(tid, record));
    ++result_.stats.branchesRetired;
}

void
Machine::initMemoryImage()
{
    for (const auto &sym : prog_->symbols) {
        for (std::uint64_t w = 0; w < sym.sizeWords; ++w) {
            Word value =
                w < sym.init.size() ? sym.init[w] : Word{0};
            if (value != 0)
                memory_.store(sym.addr + 8 * w, value);
        }
    }
    for (const auto &[symName, values] : opts_.globalOverrides) {
        const Symbol &sym = prog_->symbolByName(symName);
        for (std::uint64_t w = 0;
             w < values.size() && w < sym.sizeWords; ++w) {
            memory_.store(sym.addr + 8 * w, values[w]);
        }
    }
}

void
Machine::prepareDispatch()
{
    code_ = prog_->code.data();
    codeSize_ = static_cast<std::uint32_t>(prog_->code.size());
    cciEnabled_ = instr_->cciEnabled;

    // Pair profiling needs architectural opcodes in retirement order,
    // so it forces the switch loop over an unfused stream.
    pairProf_ = opcodePairProfilingEnabled();
    const bool fuse = opts_.enableSuperinstructions && !pairProf_;
    decoded_ = globalDecodeCache().acquire(*prog_, *instr_, fuse);
    dops_ = decoded_->ops.data();

    useThreaded_ = kThreadedDispatchAvailable && !pairProf_ &&
                   opts_.dispatch != DispatchMode::Switch;
    irqOn_ = opts_.irq.prob > 0.0 &&
             prog_->irqHandlerEntry != Program::kNoIrqHandler;
    if (pairProf_) {
        pairLocal_ =
            std::make_unique<std::uint64_t[]>(kOpcodePairTableSize);
    }
}

Thread &
Machine::spawnThread(std::uint32_t entry_pc, Word arg)
{
    ThreadId tid = static_cast<ThreadId>(threads_.size());
    auto thread = std::make_unique<Thread>();
    thread->id = tid;
    thread->pc = entry_pc;
    thread->regs[1] = arg;
    thread->regs[kStackPointer] =
        static_cast<Word>(thread->stackHigh() - 8);
    threads_.push_back(std::move(thread));
    stackSpan_ =
        static_cast<Addr>(threads_.size()) * layout::kStackSize;

    auto pmu = std::make_unique<Pmu>(opts_.lbrEntries);
    // Threads created after main enabled LBR inherit the per-core
    // configuration (the driver enables recording on every core).
    if (tid > 0 && instr_->enableLbrAtMain) {
        pmu->lbr().writeSelect(instr_->lbrSelectMask);
        pmu->lbr().writeDebugCtl(msr::kDebugCtlEnableLbr);
    }
    // PBI baseline: program two counters (loads, stores) to sample
    // the pc of matching coherence events on overflow interrupts.
    const Instrumentation &instr = *instr_;
    if (instr.pbiEnabled) {
        PerfCounter::OverflowHandler sampler = pbiSampler();
        pmu->counter(0).configure(msr::kEventLoad, instr.pbiLoadMask,
                                  false, true);
        pmu->counter(0).setSampling(instr.pbiPeriod, sampler);
        pmu->counter(0).seedJitter(opts_.sched.seed * 31 + tid);
        pmu->counter(0).enable();
        pmu->counter(1).configure(msr::kEventStore,
                                  instr.pbiStoreMask, false, true);
        pmu->counter(1).setSampling(instr.pbiPeriod, sampler);
        pmu->counter(1).seedJitter(opts_.sched.seed * 37 + tid);
        pmu->counter(1).enable();
    }
    pmus_.push_back(std::move(pmu));
    bus_.addCore(tid);
    return *threads_.back();
}

PerfCounter::OverflowHandler
Machine::pbiSampler()
{
    return [this](const CoherenceEvent &event) {
        // ~interrupt + handler cost
        chargeInstrumentation(30);
        std::uint8_t key = static_cast<std::uint8_t>(
            (static_cast<std::uint8_t>(event.observed) << 1) |
            (event.store ? 1 : 0));
        ++result_.pbiSamples[{event.pc, key}];
    };
}

bool
Machine::anyOtherRunnable(ThreadId tid) const
{
    for (const auto &t : threads_) {
        if (t->id != tid && t->runnable())
            return true;
    }
    return false;
}

ThreadId
Machine::pickNext(ThreadId current) const
{
    std::uint32_t n = static_cast<std::uint32_t>(threads_.size());
    for (std::uint32_t i = 1; i <= n; ++i) {
        ThreadId candidate = (current + i) % n;
        if (threads_[candidate]->runnable())
            return candidate;
    }
    return current; // caller checks runnability
}

void
Machine::endRun(RunOutcome outcome, ThreadId tid,
                std::uint32_t instr_index, LogSiteId site,
                const std::string &message)
{
    if (ended_)
        return;
    ended_ = true;
    result_.outcome = outcome;
    if (outcome != RunOutcome::Completed) {
        FailureInfo info;
        info.kind = outcome;
        info.thread = tid;
        info.instrIndex = instr_index;
        info.site = site;
        info.message = message;
        result_.failure = info;
    }
}

void
Machine::profileOnFault(ThreadId tid)
{
    const Instrumentation &instr = *instr_;
    if (instr.segfaultProfilesLbr)
        driver::profileLbr(*this, tid, kSegfaultSite, false);
    if (instr.segfaultProfilesLcr)
        driver::profileLcr(*this, tid, kSegfaultSite, false);
}

void
Machine::bootOrRestore()
{
    if (booted_)
        return;
    booted_ = true;

    if (resumeFrom_) {
        restoreFromCheckpoint(*resumeFrom_);
        return;
    }

    prepareDispatch();
    initMemoryImage();

    Thread &main = spawnThread(prog_->entry, 0);
    for (std::size_t i = 0;
         i < opts_.mainArgs.size() && i + 1 < kNumRegs; ++i) {
        main.regs[i + 1] = opts_.mainArgs[i];
    }

    // Inserted configure/enable code at the entry of main (Figure 7).
    const Instrumentation &instr = *instr_;
    if (instr.enableLbrAtMain) {
        driver::cleanLbr(*this, main.id);
        driver::configLbr(*this, main.id, instr.lbrSelectMask);
        driver::enableLbr(*this, main.id);
    }
    if (instr.enableLcrAtMain) {
        driver::cleanLcr(*this, main.id);
        driver::configLcr(*this, main.id, instr.lcrConfigMask);
        driver::enableLcr(*this, main.id);
    }
    if (instr.btsEnabled) {
        bts_.writeSelect(instr.btsSelectMask);
        bts_.enable();
    }
    result_.stats.setupInstructions =
        result_.stats.instrumentationInstructions;

    schedCurrent_ = 0;
    schedQuantumLeft_ = opts_.sched.quantum;
}

void
Machine::restoreFromCheckpoint(const MachineCheckpoint &ckpt)
{
    // The run's identity (program, decoded stream, dispatch mode) is
    // reconstructed, not restored: the checkpoint only carries the
    // mutable trajectory state.
    prepareDispatch();

    rng_ = ckpt.rng;
    if (ckpt.pmus.size() != ckpt.threads.size())
        fatal("malformed checkpoint: {} threads but {} PMUs",
              ckpt.threads.size(), ckpt.pmus.size());
    const bool pbi = instr_->pbiEnabled;
    for (std::size_t i = 0; i < ckpt.threads.size(); ++i) {
        threads_.push_back(
            std::make_unique<Thread>(ckpt.threads[i]));
        auto pmu = std::make_unique<Pmu>(opts_.lbrEntries);
        pmu->lbr() = ckpt.pmus[i].lbr;
        for (std::size_t c = 0; c < Pmu::kNumCounters; ++c) {
            // Counters 0/1 are the PBI pair (spawnThread); they get
            // this Machine's sampler binding, with the checkpointed
            // jitter/threshold state preserved so the resumed run
            // samples the exact events the original would have.
            bool sampled = pbi && c < 2;
            pmu->counter(c).restoreState(
                ckpt.pmus[i].counters[c],
                sampled ? pbiSampler()
                        : PerfCounter::OverflowHandler{});
        }
        pmus_.push_back(std::move(pmu));
        bus_.addCore(static_cast<std::uint32_t>(i));
    }
    bus_.restoreState(ckpt.bus);
    lcr_ = ckpt.lcr;
    bts_ = ckpt.bts;
    memory_.restore(ckpt.memory);
    heapBrk_ = ckpt.heapBrk;
    stackSpan_ = ckpt.stackSpan;
    mutexes_ = ckpt.mutexes;
    steps_ = ckpt.step;
    kernelSteps_ = ckpt.kernelSteps;
    irqDelivered_ = ckpt.irqDelivered;
    irqHandlerSteps_ = ckpt.irqHandlerSteps;
    fusedPairs_ = ckpt.fusedPairs;
    result_ = ckpt.result;
    schedCurrent_ = ckpt.schedCurrent;
    schedQuantumLeft_ = ckpt.schedQuantumLeft;
    lastCkptStep_ = ckpt.step;
    ended_ = false;
}

MachineCheckpointPtr
Machine::checkpoint()
{
    if (!booted_) {
        // Not yet running: the resume point itself, or a boot-state
        // capture for a fresh machine.
        if (resumeFrom_)
            return resumeFrom_;
        bootOrRestore();
    }
    auto ck = std::make_shared<MachineCheckpoint>();
    ck->step = steps_;
    ck->schedCurrent = schedCurrent_;
    ck->schedQuantumLeft = schedQuantumLeft_;
    ck->rng = rng_;
    ck->threads.reserve(threads_.size());
    for (const auto &t : threads_)
        ck->threads.push_back(*t);
    ck->mutexes = mutexes_;
    ck->pmus.reserve(pmus_.size());
    for (const auto &p : pmus_) {
        PmuSnapshot ps;
        ps.lbr = p->lbr();
        for (std::size_t c = 0; c < Pmu::kNumCounters; ++c)
            ps.counters[c] = p->counter(c).snapshotState();
        ck->pmus.push_back(std::move(ps));
    }
    ck->lcr = lcr_;
    ck->bts = bts_;
    ck->bus = bus_.snapshotState();
    ck->memory = memory_.fork();
    ck->heapBrk = heapBrk_;
    ck->stackSpan = stackSpan_;
    ck->kernelSteps = kernelSteps_;
    ck->irqDelivered = irqDelivered_;
    ck->irqHandlerSteps = irqHandlerSteps_;
    ck->fusedPairs = fusedPairs_;
    ck->result = result_;
    return ck;
}

void
Machine::enableCheckpoints(
    std::uint64_t every_steps,
    std::function<void(MachineCheckpointPtr)> sink)
{
    ckptEvery_ = every_steps;
    ckptSink_ = std::move(sink);
}

MachineCheckpointPtr
Machine::runToStep(std::uint64_t step)
{
    bootOrRestore();
    if (ended_)
        return nullptr;
    pauseAtStep_ = step;
    paused_ = false;
    schedLoop();
    pauseAtStep_ = ~std::uint64_t{0};
    if (!paused_)
        return nullptr; // the run ended first
    paused_ = false;
    return checkpoint();
}

void
Machine::schedLoop()
{
    const std::uint64_t maxSteps = opts_.maxSteps;

    while (!ended_) {
        if (steps_ >= pauseAtStep_) [[unlikely]] {
            paused_ = true;
            return;
        }
        if (steps_ >= maxSteps) [[unlikely]] {
            // Hang: the "paste"-style symptom. Profile whoever runs.
            profileOnFault(schedCurrent_);
            endRun(RunOutcome::StepLimit, schedCurrent_,
                   threadRef(schedCurrent_).pc, kSegfaultSite,
                   "step limit exceeded (hang)");
            return;
        }

        Thread &t = *threads_[schedCurrent_];
        if (!t.runnable() || schedQuantumLeft_ == 0) {
            ThreadId next = pickNext(schedCurrent_);
            if (!threadRef(next).runnable()) {
                bool allDone = true;
                for (const auto &th : threads_) {
                    if (th->state != ThreadState::Done) {
                        allDone = false;
                        break;
                    }
                }
                if (allDone) {
                    endRun(RunOutcome::Completed, schedCurrent_, 0, 0,
                           "");
                } else {
                    profileOnFault(0);
                    endRun(RunOutcome::Deadlock, schedCurrent_,
                           threadRef(schedCurrent_).pc, kSegfaultSite,
                           "deadlock: all live threads blocked");
                }
                return;
            }
            if (next != schedCurrent_)
                ++result_.stats.contextSwitches;
            schedCurrent_ = next;
            schedQuantumLeft_ = opts_.sched.quantum;
            // Periodic capture sits at the quantum boundary: every
            // member the per-step protocol reads is consistent here,
            // and the capture itself draws no RNG and charges no
            // instructions, so recording checkpoints never perturbs
            // the trajectory.
            if (ckptEvery_ != 0 && ckptSink_ &&
                steps_ - lastCkptStep_ >= ckptEvery_) [[unlikely]] {
                lastCkptStep_ = steps_;
                ckptSink_(checkpoint());
            }
            continue;
        }

        StepStatus status = runQuantum(t, schedQuantumLeft_);
        if (status == StepStatus::RunEnded)
            return; // outcome decided, or paused_ set mid-quantum
        if (status == StepStatus::SwitchThread)
            schedQuantumLeft_ = 0;
        // Continue: the quantum expired; reschedule above.
    }
}

RunResult
Machine::run()
{
    auto runStart = std::chrono::steady_clock::now();
    obs::TraceSpan runSpan(obs::TraceCategory::Vm, obs::TraceId::VmRun,
                           opts_.sched.seed);
    bootOrRestore();
    schedLoop();

    if (!ended_)
        endRun(RunOutcome::Completed, 0, 0, 0, "");
    // Interpreter steps count as user instructions — minus the ones
    // retired at CPL0 inside sysenter stubs, which are kernel work.
    // Charged here in one shot rather than per step (chargeUser adds
    // library bodies).
    result_.stats.userInstructions += steps_ - kernelSteps_;
    result_.stats.kernelInstructions += kernelSteps_;
    if (instr_->btsEnabled)
        result_.btsTrace = bts_.trace();

    // Fold this run's hot-path totals into the process-wide "vm"
    // stat group (throughput gauges for benches and dashboards).
    VmRunSample sample;
    sample.steps = steps_;
    sample.wallMicros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - runStart)
            .count());
    sample.memAccesses = memory_.accesses();
    sample.memFastHits = memory_.fastHits();
    sample.fusedPairs = fusedPairs_;
    sample.irqDelivered = irqDelivered_;
    sample.irqHandlerSteps = irqHandlerSteps_;
    for (std::uint32_t c = 0; c < bus_.numCores(); ++c) {
        sample.cacheLookups += bus_.cache(c).lookups();
        sample.cacheMruHits += bus_.cache(c).mruHits();
    }
    recordVmRun(sample);
    if (pairProf_ && pairLocal_)
        accumulateOpcodePairs(pairLocal_.get());
    runSpan.setArg(steps_);
    return std::move(result_);
}

Machine::StepStatus
Machine::stepLimitHang(Thread &t)
{
    // Hang: the "paste"-style symptom. Profile whoever runs.
    profileOnFault(t.id);
    endRun(RunOutcome::StepLimit, t.id, t.pc, kSegfaultSite,
           "step limit exceeded (hang)");
    return StepStatus::RunEnded;
}

Machine::StepStatus
Machine::runQuantum(Thread &t, std::uint32_t &quantum_left)
{
    // Quantum boundaries are the VM's coarsest interesting seam: one
    // span per scheduling quantum, tagged with the running thread.
    obs::TraceSpan quantumSpan(obs::TraceCategory::Vm,
                               obs::TraceId::VmQuantum, t.id);
#if STM_HAVE_THREADED_DISPATCH
    if (useThreaded_) [[likely]]
        return interpretThreaded(t, quantum_left);
#endif
    return interpretSwitch(t, quantum_left);
}

// The interpreter loops themselves: one handler-body template
// (vm/interp_loop.inc) instantiated for each dispatch mechanism.
#define STM_INTERP_NAME interpretSwitch
#define STM_INTERP_THREADED 0
#include "vm/interp_loop.inc"
#undef STM_INTERP_NAME
#undef STM_INTERP_THREADED

#if STM_HAVE_THREADED_DISPATCH
#define STM_INTERP_NAME interpretThreaded
#define STM_INTERP_THREADED 1
#include "vm/interp_loop.inc"
#undef STM_INTERP_NAME
#undef STM_INTERP_THREADED
#endif

Machine::StepStatus
Machine::execSync(Thread &t, const Instruction &inst)
{
    std::uint32_t pc = t.pc;
    auto &regs = t.regs;

    switch (inst.op) {
      case Opcode::Lock: {
        Addr addr = static_cast<Addr>(regs[inst.ra]);
        if (addr == 0 || !validAddress(t.id, addr)) {
            raiseSegfault(t.id, "lock on invalid mutex address");
            return StepStatus::RunEnded;
        }
        // The lock acquisition is an atomic read-modify-write on the
        // mutex word: one store-type access for coherence purposes.
        Word one = 1;
        if (!dataAccess(t.id, layout::codeAddr(pc), addr, true, &one))
            return StepStatus::RunEnded;
        MachineMutex &mutex = mutexes_[addr];
        if (mutex.locked && mutex.owner != t.id) {
            t.state = ThreadState::BlockedOnMutex;
            t.waitMutex = addr;
            // pc unchanged: the acquisition retries on wake-up.
            return StepStatus::SwitchThread;
        }
        mutex.locked = true;
        mutex.owner = t.id;
        t.pc = pc + 1;
        return StepStatus::Continue;
      }
      case Opcode::Unlock: {
        Addr addr = static_cast<Addr>(regs[inst.ra]);
        if (addr == 0 || !validAddress(t.id, addr)) {
            raiseSegfault(t.id, "unlock on invalid mutex address");
            return StepStatus::RunEnded;
        }
        Word zero = 0;
        if (!dataAccess(t.id, layout::codeAddr(pc), addr, true,
                        &zero)) {
            return StepStatus::RunEnded;
        }
        MachineMutex &mutex = mutexes_[addr];
        mutex.locked = false;
        for (auto &other : threads_) {
            if (other->state == ThreadState::BlockedOnMutex &&
                other->waitMutex == addr) {
                other->state = ThreadState::Ready;
            }
        }
        t.pc = pc + 1;
        return StepStatus::Continue;
      }
      case Opcode::Spawn: {
        Word arg = regs[inst.ra];
        Thread &child = spawnThread(inst.target, arg);
        regs[inst.rd] = static_cast<Word>(child.id);
        t.pc = pc + 1;
        // pthread_create does real kernel work.
        chargeKernel(t.id, 60, 4);
        return StepStatus::Continue;
      }
      case Opcode::Join: {
        ThreadId target = static_cast<ThreadId>(regs[inst.ra]);
        if (target >= threads_.size()) {
            raiseSegfault(t.id, "join on invalid thread id");
            return StepStatus::RunEnded;
        }
        if (threads_[target]->state == ThreadState::Done) {
            t.pc = pc + 1;
            return StepStatus::Continue;
        }
        t.state = ThreadState::BlockedOnJoin;
        t.joinTarget = target;
        // pc unchanged: re-checked on wake-up.
        return StepStatus::SwitchThread;
      }
      case Opcode::Yield:
        t.pc = pc + 1;
        return StepStatus::SwitchThread;
      default:
        panic("execSync: not a sync op");
    }
}

Machine::StepStatus
Machine::execSyscall(Thread &t, const Instruction &inst)
{
    std::uint32_t pc = t.pc;
    auto &regs = t.regs;
    auto no = static_cast<SyscallNo>(inst.imm);

    // The syscall instruction itself retires a far branch.
    BranchRecord far;
    far.fromIp = layout::codeAddr(pc);
    far.toIp = layout::kKernelText;
    far.kind = BranchKind::FarBranch;
    far.kernel = false;
    pmuOf(t.id).retireBranch(far);

    switch (no) {
      case SyscallNo::CleanLbr:
        driver::cleanLbr(*this, t.id);
        break;
      case SyscallNo::ConfigLbr:
        driver::configLbr(*this, t.id,
                          static_cast<std::uint64_t>(regs[inst.ra]));
        break;
      case SyscallNo::EnableLbr:
        driver::enableLbr(*this, t.id);
        break;
      case SyscallNo::DisableLbr:
        driver::disableLbr(*this, t.id);
        break;
      case SyscallNo::ProfileLbr:
        driver::profileLbr(*this, t.id,
                           static_cast<LogSiteId>(regs[inst.ra]),
                           false);
        break;
      case SyscallNo::CleanLcr:
        driver::cleanLcr(*this, t.id);
        break;
      case SyscallNo::ConfigLcr:
        driver::configLcr(*this, t.id,
                          static_cast<std::uint64_t>(regs[inst.ra]));
        break;
      case SyscallNo::EnableLcr:
        driver::enableLcr(*this, t.id);
        break;
      case SyscallNo::DisableLcr:
        driver::disableLcr(*this, t.id);
        break;
      case SyscallNo::ProfileLcr:
        driver::profileLcr(*this, t.id,
                           static_cast<LogSiteId>(regs[inst.ra]),
                           false);
        break;
      case SyscallNo::DumpCore:
        driver::dumpCore(*this, t.id);
        break;
      case SyscallNo::LogCallStack:
        driver::logCallStack(*this, t.id);
        break;
      case SyscallNo::Alloc: {
        chargeKernel(t.id, 30, 3);
        Addr bytes = static_cast<Addr>(regs[inst.ra]);
        regs[inst.rd] = static_cast<Word>(heapBrk_);
        heapBrk_ += (bytes + 7) & ~Addr{7};
        break;
      }
      case SyscallNo::ThreadExit:
        t.state = ThreadState::Done;
        for (auto &other : threads_) {
            if (other->state == ThreadState::BlockedOnJoin &&
                other->joinTarget == t.id) {
                other->state = ThreadState::Ready;
            }
        }
        t.pc = pc + 1;
        return StepStatus::SwitchThread;
    }
    t.pc = pc + 1;
    return StepStatus::Continue;
}

Machine::StepStatus
Machine::serviceInterrupt(Thread &t)
{
    ++irqDelivered_;
    Pmu &pmu = *pmus_[t.id];

    // Hardware interrupt frame: pc, CPL, and the register file are
    // pushed at delivery and restored by Iret, so the handler can only
    // talk to mainline code through memory.
    const std::uint32_t savedPc = t.pc;
    const std::uint8_t savedCpl = t.cpl;
    const std::array<Word, kNumRegs> savedRegs = t.regs;

    // Handler-side branch retirement: feeds LBR/BTS like any retired
    // taken branch but, like chargeKernel's synthetic ring-0 branches,
    // never bumps the user retirement counter — half of the bare-iret
    // bit-identity contract (DESIGN.md §15).
    auto retire = [&](BranchKind kind, SourceBranchId src, bool outcome,
                      std::uint32_t from_idx, std::uint32_t to_idx) {
        if (pmu.lbr().enabled() || bts_.enabled()) {
            BranchRecord record;
            record.fromIp = layout::codeAddr(from_idx);
            record.toIp = layout::codeAddr(to_idx);
            record.kind = kind;
            record.kernel = true; // handler branches retire at CPL0
            record.srcBranch = src;
            record.outcome = outcome;
            pmu.retireBranch(record);
            chargeInstrumentation(bts_.retire(t.id, record));
        }
    };

    // Delivery itself is a far transfer into ring 0.
    retire(BranchKind::FarBranch, kNoSourceBranch, false, savedPc,
           prog_->irqHandlerEntry);
    t.cpl = 0;
    t.pc = prog_->irqHandlerEntry;

    std::vector<std::uint32_t> frames; // handler-local call stack
    const std::uint32_t budget = opts_.irq.handlerStepBudget;
    auto &regs = t.regs;

    for (std::uint32_t handlerSteps = 0;; ++handlerSteps) {
        if (handlerSteps >= budget) [[unlikely]] {
            // Wedged handler / interrupt storm: deterministic hang.
            profileOnFault(t.id);
            endRun(RunOutcome::StepLimit, t.id, t.pc, kSegfaultSite,
                   "interrupt handler exceeded its step budget");
            return StepStatus::RunEnded;
        }
        const std::uint32_t pc = t.pc;
        if (pc >= codeSize_) [[unlikely]] {
            raiseSegfault(
                t.id, "interrupt handler fell off the code segment");
            return StepStatus::RunEnded;
        }
        const Instruction &inst = code_[pc];
        if (std::int32_t bi = decoded_->beforeIdx[pc]; bi >= 0) {
            // Instrumentation hooks run inside the handler too — this
            // is how panic-path profiling (ProfileLbr right before a
            // kernel failure-logging site) works.
            runHooks(t, decoded_->hookLists[
                            static_cast<std::size_t>(bi)]);
            if (ended_)
                return StepStatus::RunEnded;
        }
        ++irqHandlerSteps_;
        // Handler work is ring-0 work. The frame push/pop pair (all a
        // bare-iret handler executes) is free, so undelivered and
        // no-op-delivered runs produce bit-identical RunResults.
        if (inst.op != Opcode::Iret)
            ++result_.stats.kernelInstructions;

        switch (inst.op) {
          case Opcode::Nop:
            t.pc = pc + 1;
            break;
          case Opcode::Movi:
            regs[inst.rd] = inst.imm;
            t.pc = pc + 1;
            break;
          case Opcode::Mov:
            regs[inst.rd] = regs[inst.ra];
            t.pc = pc + 1;
            break;
          case Opcode::Add:
            regs[inst.rd] = regs[inst.ra] + regs[inst.rb];
            t.pc = pc + 1;
            break;
          case Opcode::Addi:
            regs[inst.rd] = regs[inst.ra] + inst.imm;
            t.pc = pc + 1;
            break;
          case Opcode::Sub:
            regs[inst.rd] = regs[inst.ra] - regs[inst.rb];
            t.pc = pc + 1;
            break;
          case Opcode::Mul:
            regs[inst.rd] = regs[inst.ra] * regs[inst.rb];
            t.pc = pc + 1;
            break;
          case Opcode::Div:
          case Opcode::Mod:
            if (regs[inst.rb] == 0) {
                profileOnFault(t.id);
                endRun(RunOutcome::ArithmeticFault, t.id, pc,
                       kSegfaultSite,
                       "division by zero in interrupt handler");
                return StepStatus::RunEnded;
            }
            regs[inst.rd] = inst.op == Opcode::Div
                                ? regs[inst.ra] / regs[inst.rb]
                                : regs[inst.ra] % regs[inst.rb];
            t.pc = pc + 1;
            break;
          case Opcode::And:
            regs[inst.rd] = regs[inst.ra] & regs[inst.rb];
            t.pc = pc + 1;
            break;
          case Opcode::Or:
            regs[inst.rd] = regs[inst.ra] | regs[inst.rb];
            t.pc = pc + 1;
            break;
          case Opcode::Xor:
            regs[inst.rd] = regs[inst.ra] ^ regs[inst.rb];
            t.pc = pc + 1;
            break;
          case Opcode::Shl:
            regs[inst.rd] = regs[inst.ra] << (regs[inst.rb] & 63);
            t.pc = pc + 1;
            break;
          case Opcode::Shr:
            regs[inst.rd] = regs[inst.ra] >> (regs[inst.rb] & 63);
            t.pc = pc + 1;
            break;
          case Opcode::Not:
            regs[inst.rd] = ~regs[inst.ra];
            t.pc = pc + 1;
            break;
          case Opcode::Neg:
            regs[inst.rd] = -regs[inst.ra];
            t.pc = pc + 1;
            break;
          case Opcode::Lea:
            regs[inst.rd] = static_cast<Word>(
                prog_->symbols[inst.symId].addr + inst.imm);
            t.pc = pc + 1;
            break;
          case Opcode::Load:
          case Opcode::Store: {
            Addr ea = static_cast<Addr>(regs[inst.ra]) +
                      static_cast<Addr>(inst.imm);
            Word value = regs[inst.rb];
            if (!dataAccess(t.id, layout::codeAddr(pc), ea,
                            inst.op == Opcode::Store, &value, true)) {
                return StepStatus::RunEnded;
            }
            if (inst.op == Opcode::Load)
                regs[inst.rd] = value;
            t.pc = pc + 1;
            break;
          }
          case Opcode::Br:
            if (evalCond(inst.cond, regs[inst.ra], regs[inst.rb])) {
                retire(BranchKind::Conditional, inst.srcBranch,
                       inst.outcomeWhenTaken, pc, inst.target);
                t.pc = inst.target;
            } else {
                t.pc = pc + 1;
            }
            break;
          case Opcode::Jmp:
            retire(BranchKind::NearRelativeJump, inst.srcBranch,
                   inst.outcomeWhenTaken, pc, inst.target);
            t.pc = inst.target;
            break;
          case Opcode::Call:
            retire(BranchKind::NearRelativeCall, inst.srcBranch,
                   inst.outcomeWhenTaken, pc, inst.target);
            frames.push_back(pc + 1);
            t.pc = inst.target;
            break;
          case Opcode::Ret:
            if (frames.empty()) {
                raiseSegfault(t.id,
                              "ret without a frame in interrupt "
                              "handler (use iret)");
                return StepStatus::RunEnded;
            }
            retire(BranchKind::NearReturn, inst.srcBranch,
                   inst.outcomeWhenTaken, pc, frames.back());
            t.pc = frames.back();
            frames.pop_back();
            break;
          case Opcode::Out:
            result_.output.push_back(regs[inst.ra]);
            t.pc = pc + 1;
            break;
          case Opcode::AssertEq:
            if (regs[inst.ra] != regs[inst.rb]) {
                profileOnFault(t.id);
                endRun(RunOutcome::AssertFailed, t.id, pc,
                       kSegfaultSite,
                       "assertion failed in interrupt handler");
                return StepStatus::RunEnded;
            }
            t.pc = pc + 1;
            break;
          case Opcode::LogError: {
            // Panic-path logging: a kernel failure-logging site.
            const LogSiteInfo &site = prog_->logSite(inst.logSite);
            endRun(RunOutcome::ErrorLogged, t.id, pc, site.id,
                   site.message);
            return StepStatus::RunEnded;
          }
          case Opcode::LogInfo:
            // Kernel log buffer write: no library excursion, no cost.
            t.pc = pc + 1;
            break;
          case Opcode::Halt:
            endRun(RunOutcome::Completed, t.id, pc, 0, "");
            return StepStatus::RunEnded;
          case Opcode::Iret: {
            retire(BranchKind::FarBranch, kNoSourceBranch, false, pc,
                   savedPc);
            if (std::int32_t ai = decoded_->afterIdx[pc]; ai >= 0) {
                runHooks(t, decoded_->hookLists[
                                static_cast<std::size_t>(ai)]);
                if (ended_)
                    return StepStatus::RunEnded;
            }
            t.regs = savedRegs;
            t.cpl = savedCpl;
            t.pc = savedPc;
            return StepStatus::Continue;
          }
          default:
            // Lock/Unlock/Spawn/Join/Yield/Syscall/LibCall/SysEnter/
            // SysRet: blocking or ring-transition work is illegal in
            // interrupt context (the classic driver-bug shape).
            raiseSegfault(t.id, strfmt("opcode '{}' not permitted in "
                                       "an interrupt handler",
                                       opcodeName(inst.op)));
            return StepStatus::RunEnded;
        }

        if (std::int32_t ai = decoded_->afterIdx[pc]; ai >= 0) {
            runHooks(t, decoded_->hookLists[
                            static_cast<std::size_t>(ai)]);
            if (ended_)
                return StepStatus::RunEnded;
        }
    }
}

void
Machine::runHooks(Thread &t, const std::vector<Hook> &hooks)
{
    for (const auto &hook : hooks) {
        switch (hook.action) {
          case HookAction::ProfileLbr:
            driver::profileLbr(*this, t.id, hook.site,
                               hook.successSite);
            break;
          case HookAction::ProfileLcr:
            driver::profileLcr(*this, t.id, hook.site,
                               hook.successSite);
            break;
          case HookAction::DisableLbr:
            driver::disableLbr(*this, t.id);
            break;
          case HookAction::EnableLbr:
            driver::enableLbr(*this, t.id);
            break;
          case HookAction::DisableLcr:
            driver::disableLcr(*this, t.id);
            break;
          case HookAction::EnableLcr:
            driver::enableLcr(*this, t.id);
            break;
          case HookAction::CbiSample:
            cbiSample(t, hook);
            break;
        }
        if (ended_)
            return;
    }
}

void
Machine::cbiSample(Thread &t, const Hook &hook)
{
    const Instrumentation &instr = *instr_;
    // Fast path: a decrement-and-test on the sampling countdown.
    chargeInstrumentation(1);
    if (t.cbiCountdown == 0) {
        t.cbiCountdown = rng_.nextGeometric(instr.cbiMeanPeriod);
    }
    if (--t.cbiCountdown != 0)
        return;
    t.cbiCountdown = rng_.nextGeometric(instr.cbiMeanPeriod);
    // Slow path: evaluate and record the branch predicate.
    chargeInstrumentation(15);
    const Instruction &br = prog_->code[t.pc];
    if (br.op != Opcode::Br)
        return;
    bool taken = evalCond(br.cond, t.regs[br.ra], t.regs[br.rb]);
    bool outcome = taken == br.outcomeWhenTaken;
    ++result_.cbiSiteSamples[hook.site];
    ++result_.cbiCounts[CbiPredicate{hook.site, outcome}];
}

} // namespace stm
