/**
 * @file
 * The MiniVM machine: the execution substrate standing in for running
 * real x86 binaries on the paper's Intel Core i7 testbed (for LBR) and
 * under the PIN-based simulator (for LCR).
 *
 * The machine interprets a Program over any number of threads, each
 * pinned to its own core with a private L1-D cache (MESI over a
 * snooping bus) and a private PMU (LBR + performance counters);
 * per-thread LCR rings live in a machine-wide LcrDomain. Every
 * retired taken branch and data access is fed to the monitoring
 * hardware, instrumentation hooks are executed through the simulated
 * kernel driver with their full instruction cost, and failures
 * (segfaults, assertion violations, failure-logging calls, deadlocks,
 * hangs) are detected and profiled exactly as the paper's deployment
 * would.
 */

#ifndef STM_VM_MACHINE_HH
#define STM_VM_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/bus.hh"
#include "hw/bts.hh"
#include "hw/lcr.hh"
#include "hw/pmu.hh"
#include "program/program.hh"
#include "support/random.hh"
#include "vm/checkpoint.hh"
#include "vm/decoded_program.hh"
#include "vm/memory_image.hh"
#include "vm/options.hh"
#include "vm/run_result.hh"
#include "vm/thread.hh"

namespace stm
{

/** The simulated machine. One Machine executes one run. */
class Machine
{
  public:
    /**
     * @p overlay, when non-null, is the copy-on-write instrumentation
     * plan for this run: the Machine reads every hook table and
     * scalar knob from it instead of prog->instrumentation, so one
     * immutable base Program can be shared by concurrent runs under
     * different per-phase plans (see program/transform.hh). The
     * Machine keeps the shared_ptr alive for the whole run; the
     * predecoded stream it dispatches over owns copies of the hook
     * lists (vm/decoded_program.hh).
     */
    Machine(ProgramPtr prog, MachineOptions opts = {},
            std::shared_ptr<const Instrumentation> overlay = nullptr);

    /**
     * Construct a Machine that resumes from @p resume_from instead of
     * booting: the first run()/runToStep() call adopts the
     * checkpoint's state and continues the run mid-stream. The
     * checkpoint must have been captured under the same program
     * content, options, and seed (the SnapshotStore keys enforce
     * this); the instrumentation plan may differ only when the plan
     * swap leaves the already-executed prefix's hook firings
     * unchanged (DESIGN.md §16).
     */
    Machine(ProgramPtr prog, MachineOptions opts,
            std::shared_ptr<const Instrumentation> overlay,
            MachineCheckpointPtr resume_from);

    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Execute the program to completion or failure. */
    RunResult run();

    /**
     * Run (or continue running) until exactly @p step instructions
     * have retired, then pause at the step boundary — before the
     * step's bounds check, IRQ draw, preemption probe, and hooks —
     * and return a checkpoint of the paused state. Returns null if
     * the run ended before reaching @p step (call run() afterwards —
     * or beforehand — for the finished RunResult; runToStep may be
     * called repeatedly with increasing steps, and run() finishes
     * the run from wherever the last pause left it).
     */
    MachineCheckpointPtr runToStep(std::uint64_t step);

    /**
     * Arm periodic checkpointing: capture a checkpoint at the first
     * quantum boundary at or after every multiple of @p every_steps
     * and hand it to @p sink. Capture never perturbs the run (no RNG
     * draws, no instruction charges); the CoW fork prices each
     * capture at O(pages touched since the previous one). Call
     * before run().
     */
    void enableCheckpoints(
        std::uint64_t every_steps,
        std::function<void(MachineCheckpointPtr)> sink);

    /**
     * Capture the complete deterministic machine state. Valid at step
     * boundaries only: before the first run() call (for a resumed
     * construction, that means the resume point itself), at a
     * runToStep() pause, or from an enableCheckpoints sink.
     */
    MachineCheckpointPtr checkpoint();

    // ---- services used by the kernel driver and library models ----

    const Program &program() const { return *prog_; }
    const MachineOptions &options() const { return opts_; }
    /** The instrumentation plan in effect (overlay or the program's). */
    const Instrumentation &instrumentation() const { return *instr_; }

    Pmu &pmuOf(ThreadId tid);
    LcrDomain &lcrDomain() { return lcr_; }
    Thread &threadRef(ThreadId tid);
    std::uint64_t steps() const { return steps_; }

    /** Charge ring-0 work and retire that many kernel branches. */
    void chargeKernel(ThreadId tid, std::uint64_t instrs,
                      std::uint32_t branches);
    /** Charge user-level work (library bodies). */
    void chargeUser(std::uint64_t instrs);
    /** Charge instrumentation work (tracked separately). */
    void chargeInstrumentation(std::uint64_t instrs);

    /** Append a collected profile to the run result. */
    void appendProfile(ProfileRecord record);

    /**
     * Perform one data access on behalf of @p tid at @p addr,
     * feeding the coherence event to LCR and the performance
     * counters. Returns false (and flags a segfault) if the address
     * is invalid. On success *value_in_out is loaded or stored.
     */
    bool dataAccess(ThreadId tid, Addr pc, Addr addr, bool is_store,
                    Word *value_in_out, bool kernel = false);

    /** Retire a synthetic user-level branch (library bodies). */
    void retireLibraryBranch(ThreadId tid, Addr from_ip, Addr to_ip);

    /** True if @p addr is a mapped data address for @p tid. */
    bool validAddress(ThreadId tid, Addr addr) const;

    /** Raise a segmentation fault at the current instruction. */
    void raiseSegfault(ThreadId tid, const std::string &message);

  private:
    enum class StepStatus : std::uint8_t {
        Continue,     //!< keep running this thread
        SwitchThread, //!< blocked/yielded/quantum: pick another
        RunEnded,     //!< outcome decided
    };

    void initMemoryImage();

    /**
     * One-time run setup: normal boot (dispatch + memory image +
     * main thread + instrumentation-at-main) or, for a resumed
     * construction, checkpoint adoption. Idempotent across
     * runToStep()/run() calls.
     */
    void bootOrRestore();

    /** Adopt @p ckpt wholesale (the resume half of bootOrRestore). */
    void restoreFromCheckpoint(const MachineCheckpoint &ckpt);

    /**
     * The scheduler loop (quantum picking + dispatch), factored out
     * of run() so runToStep() can drive it to a pause and run() can
     * later finish the same run. Leaves paused_ set when the loop
     * stopped at pauseAtStep_ rather than at an outcome.
     */
    void schedLoop();

    /** The PBI overflow sampler bound to this Machine. */
    PerfCounter::OverflowHandler pbiSampler();

    /**
     * Acquire this run's predecoded operand stream from the global
     * decode cache (built on first use per (program, hook-tables,
     * fusion) key) and resolve the dispatch mode: token-threaded
     * computed goto where compiled in and selected, the portable
     * switch otherwise. Replaces PR 2's per-run dispatch tables —
     * the flags byte and hook side tables now live inside the shared
     * DecodedProgram.
     */
    void prepareDispatch();

    Thread &spawnThread(std::uint32_t entry_pc, Word arg);

    /**
     * Interpret @p thread until its quantum expires (returns Continue
     * with @p quantum_left at 0), it blocks/yields/preempts
     * (SwitchThread), or the run ends (RunEnded). Thin wrapper that
     * opens the VmQuantum trace span and tail-calls the selected
     * interpreter loop.
     */
    StepStatus runQuantum(Thread &thread, std::uint32_t &quantum_left);

    /**
     * The two interpreter loops. Both are generated from one handler
     * include (vm/interp_loop.inc) so their per-instruction semantics
     * are textually identical: the switch loop is the portable
     * fallback (and the opcode-pair profiling vehicle); the threaded
     * loop replicates the dispatch at every handler tail via computed
     * goto. Bit-identical RunResults by construction, pinned by
     * test_golden_determinism under both modes.
     */
    StepStatus interpretSwitch(Thread &thread,
                               std::uint32_t &quantum_left);
#if STM_HAVE_THREADED_DISPATCH
    StepStatus interpretThreaded(Thread &thread,
                                 std::uint32_t &quantum_left);
#endif

    StepStatus execSync(Thread &thread, const Instruction &inst);
    StepStatus execSyscall(Thread &thread, const Instruction &inst);
    StepStatus execLibCall(Thread &thread, const Instruction &inst);

    /**
     * Deliver one asynchronous interrupt to @p thread: push the
     * hardware frame (pc + registers), drop to CPL0, and run the
     * registered handler to its Iret in a cold side interpreter.
     * Synchronous with respect to the main loop — handler work never
     * touches steps_, the quantum, or the seeded preemption/delivery
     * draw pattern, and a bare-iret handler leaves the RunResult
     * bit-identical to an undelivered run (the contract DESIGN.md §15
     * documents and test_kernel pins). Returns RunEnded if the handler
     * faults, logs a failure, or exhausts its step budget.
     */
    StepStatus serviceInterrupt(Thread &thread);

    /** Step-limit hang: profile whoever runs and end the run. */
    StepStatus stepLimitHang(Thread &thread);

    /**
     * The interpreter loops' combined limit handler: the hoisted
     * per-quantum limit is min(opts_.maxSteps, pauseAtStep_), so a
     * trip here is either a requested pause (steps_ == pauseAtStep_,
     * state untouched, resumable) or the real step-limit hang.
     */
    StepStatus
    stepLimit(Thread &thread)
    {
        if (steps_ >= opts_.maxSteps)
            return stepLimitHang(thread);
        paused_ = true;
        return StepStatus::RunEnded;
    }

    void runHooks(Thread &thread, const std::vector<Hook> &hooks);
    void cbiSample(Thread &thread, const Hook &hook);

    /**
     * Record one retired taken branch. Inline: called for every taken
     * branch; in the common bare-run case (LBR disabled, BTS off) it
     * reduces to the gate plus one counter bump — building the record
     * is pointless when both sinks would drop it unexamined. Takes the
     * branch metadata as scalars so fused handlers can retire either
     * half of a pair straight from the DecodedOp fields.
     */
    void
    retireTakenBranch(Thread &thread, BranchKind kind, bool kernel,
                      SourceBranchId src_branch, bool outcome,
                      std::uint32_t from_idx, std::uint32_t to_idx)
    {
        Pmu &pmu = *pmus_[thread.id];
        if (pmu.lbr().enabled() || bts_.enabled()) {
            BranchRecord record;
            record.fromIp = layout::codeAddr(from_idx);
            record.toIp = layout::codeAddr(to_idx);
            record.kind = kind;
            record.kernel = kernel;
            record.srcBranch = src_branch;
            record.outcome = outcome;
            pmu.retireBranch(record);
            chargeInstrumentation(bts_.retire(thread.id, record));
        }
        ++result_.stats.branchesRetired;
    }

    void endRun(RunOutcome outcome, ThreadId tid,
                std::uint32_t instr_index, LogSiteId site,
                const std::string &message);
    void profileOnFault(ThreadId tid);

    bool anyOtherRunnable(ThreadId tid) const;
    ThreadId pickNext(ThreadId current) const;

    ProgramPtr prog_;
    MachineOptions opts_;
    /** Keeps an overlay plan alive; null when running the program's own. */
    std::shared_ptr<const Instrumentation> overlayHold_;
    /** The plan every read goes through (overlay or &prog_->instrumentation). */
    const Instrumentation *instr_ = nullptr;
    Pcg32 rng_;

    std::vector<std::unique_ptr<Thread>> threads_;
    std::vector<std::unique_ptr<Pmu>> pmus_;
    Bus bus_;
    LcrDomain lcr_;
    BranchTraceStore bts_;

    MemoryImage memory_;
    Addr heapBrk_ = layout::kHeapBase;

    // ---- hot-path dispatch state (resolved once per run) ----
    /** This run's predecoded stream (shared via the decode cache). */
    DecodedProgramPtr decoded_;
    /** decoded_->ops.data(), hoisted for the interpreter loops. */
    const DecodedOp *dops_ = nullptr;
    const Instruction *code_ = nullptr;
    std::uint32_t codeSize_ = 0;
    bool cciEnabled_ = false;
    /** Superinstruction pairs retired this run (each covers 2 steps). */
    std::uint64_t fusedPairs_ = 0;
    /** Dispatch via the computed-goto loop (vs the portable switch). */
    bool useThreaded_ = false;
    /** Interrupt delivery armed (irq.prob > 0 and a handler exists). */
    bool irqOn_ = false;
    /** Interrupts delivered / handler instructions this run (vm stats). */
    std::uint64_t irqDelivered_ = 0;
    std::uint64_t irqHandlerSteps_ = 0;
    /** Main-loop steps retired at CPL0 (sysenter stub bodies). */
    std::uint64_t kernelSteps_ = 0;
    /** Opcode-pair profiling active: switch loop, unfused stream. */
    bool pairProf_ = false;
    /** Local (first, second) opcode histogram when pairProf_. */
    std::unique_ptr<std::uint64_t[]> pairLocal_;
    /** One past the last mapped global byte (fixed at construction). */
    Addr globalsEnd_ = layout::kGlobalBase;
    /** Bytes of the contiguous live-stack span (threads are dense). */
    Addr stackSpan_ = 0;

    std::unordered_map<Addr, MachineMutex> mutexes_;

    RunResult result_;
    bool ended_ = false;
    std::uint64_t steps_ = 0;

    // ---- scheduler position (members, not run() locals, so
    //      checkpoint() can capture mid-run) ----
    ThreadId schedCurrent_ = 0;
    std::uint32_t schedQuantumLeft_ = 0;

    // ---- checkpoint / resume plumbing ----
    /** Adopted by the first bootOrRestore(); null for normal boots. */
    MachineCheckpointPtr resumeFrom_;
    /** bootOrRestore() has run (run setup must happen exactly once). */
    bool booted_ = false;
    /** schedLoop stopped at pauseAtStep_, not at an outcome. */
    bool paused_ = false;
    /** Pause boundary for runToStep (no pause when all-ones). */
    std::uint64_t pauseAtStep_ = ~std::uint64_t{0};
    /** Periodic-capture interval in steps (0 = disarmed). */
    std::uint64_t ckptEvery_ = 0;
    /** steps_ at the last periodic capture. */
    std::uint64_t lastCkptStep_ = 0;
    std::function<void(MachineCheckpointPtr)> ckptSink_;
};

} // namespace stm

#endif // STM_VM_MACHINE_HH
