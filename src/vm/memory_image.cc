#include "vm/memory_image.hh"

#include "support/logging.hh"

namespace stm
{

MemoryImage::MemoryImage()
    // An impossible page base (not page-aligned) so the first access
    // always misses the translation cache.
    : cachedPageBase_(~Addr{0})
{
    globals_.base = layout::kGlobalBase;
    heap_.base = layout::kHeapBase;
    stacks_.base = layout::kStackBase;
}

MemoryImage::Segment &
MemoryImage::segmentFor(Addr addr)
{
    if (addr >= layout::kStackBase)
        return stacks_;
    if (addr >= layout::kHeapBase)
        return heap_;
    if (addr >= layout::kGlobalBase)
        return globals_;
    panic("memory image access outside any data segment: 0x{}", addr);
}

Word *
MemoryImage::cellSlow(Addr addr, Addr page)
{
    Segment &seg = segmentFor(addr);
    std::size_t index =
        static_cast<std::size_t>((addr - seg.base) >> kPageShift);
    if (index >= seg.pages.size())
        seg.pages.resize(index + 1);
    if (!seg.pages[index]) {
        // Zero-filled materialization: a never-written word reads 0,
        // exactly like the seed's absent hash-map entry.
        seg.pages[index] = std::make_unique<Word[]>(kPageWords);
    }
    cachedPageBase_ = page;
    cachedPage_ = seg.pages[index].get();
    return cachedPage_ + ((addr & kPageMask) >> 3);
}

} // namespace stm
