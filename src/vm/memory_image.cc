#include "vm/memory_image.hh"

#include <cstring>

#include "support/logging.hh"

namespace stm
{

namespace
{

std::size_t
segmentPageCount(const std::vector<std::shared_ptr<Word[]>> &pages)
{
    std::size_t n = 0;
    for (const auto &page : pages) {
        if (page)
            ++n;
    }
    return n;
}

} // namespace

std::size_t
MemorySnapshot::pageCount() const
{
    return segmentPageCount(globals) + segmentPageCount(heap) +
           segmentPageCount(stacks);
}

std::size_t
MemorySnapshot::approxBytes() const
{
    return pageCount() * MemoryImage::kPageBytes +
           (globals.capacity() + heap.capacity() + stacks.capacity()) *
               sizeof(std::shared_ptr<Word[]>);
}

MemoryImage::MemoryImage()
    // An impossible page base (not page-aligned) so the first access
    // always misses the translation cache.
    : cachedPageBase_(~Addr{0})
{
    globals_.base = layout::kGlobalBase;
    heap_.base = layout::kHeapBase;
    stacks_.base = layout::kStackBase;
}

MemoryImage::Segment &
MemoryImage::segmentFor(Addr addr)
{
    if (addr >= layout::kStackBase)
        return stacks_;
    if (addr >= layout::kHeapBase)
        return heap_;
    if (addr >= layout::kGlobalBase)
        return globals_;
    panic("memory image access outside any data segment: 0x{}", addr);
}

std::shared_ptr<Word[]> &
MemoryImage::materialize(Addr addr)
{
    Segment &seg = segmentFor(addr);
    std::size_t index =
        static_cast<std::size_t>((addr - seg.base) >> kPageShift);
    if (index >= seg.pages.size())
        seg.pages.resize(index + 1);
    if (!seg.pages[index]) {
        // Zero-filled materialization: a never-written word reads 0,
        // exactly like the seed's absent hash-map entry.
        seg.pages[index] = std::make_shared<Word[]>(kPageWords);
    }
    return seg.pages[index];
}

Word
MemoryImage::loadSlow(Addr addr, Addr page)
{
    std::shared_ptr<Word[]> &slot = materialize(addr);
    // Cache only exclusively-owned pages: the cache serves stores
    // too, so a co-owned page must keep routing through storeSlow's
    // copy-on-write check.
    if (slot.use_count() == 1) {
        cachedPageBase_ = page;
        cachedPage_ = slot.get();
    }
    return slot[(addr & kPageMask) >> 3];
}

void
MemoryImage::storeSlow(Addr addr, Addr page, Word value)
{
    std::shared_ptr<Word[]> &slot = materialize(addr);
    if (slot.use_count() > 1) {
        // Privatize: another owner (a checkpoint) holds this page.
        auto copy = std::make_shared<Word[]>(kPageWords);
        std::memcpy(copy.get(), slot.get(), kPageBytes);
        slot = std::move(copy);
    }
    cachedPageBase_ = page;
    cachedPage_ = slot.get();
    cachedPage_[(addr & kPageMask) >> 3] = value;
}

MemorySnapshot
MemoryImage::fork()
{
    MemorySnapshot snap;
    snap.globals = globals_.pages;
    snap.heap = heap_.pages;
    snap.stacks = stacks_.pages;
    snap.accesses = accesses_;
    snap.fastHits = fastHits_;
    // Every page is now co-owned; the next store to each must
    // privatize, so the write-capable translation cache must miss.
    cachedPageBase_ = ~Addr{0};
    cachedPage_ = nullptr;
    return snap;
}

void
MemoryImage::restore(const MemorySnapshot &snap)
{
    globals_.pages = snap.globals;
    heap_.pages = snap.heap;
    stacks_.pages = snap.stacks;
    accesses_ = snap.accesses;
    fastHits_ = snap.fastHits;
    cachedPageBase_ = ~Addr{0};
    cachedPage_ = nullptr;
}

} // namespace stm
