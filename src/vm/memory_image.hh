/**
 * @file
 * The flat paged data-memory image of one simulated machine.
 *
 * Replaces the seed's `unordered_map<Addr, Word>` with a direct-mapped
 * page table over the fixed address-space layout (isa/types.hh): one
 * table per segment (globals, heap, stacks), indexed by
 * `(addr - segment base) >> kPageShift`. Pages are zero-filled and
 * materialized on first touch, which preserves the map's semantics
 * exactly — a never-written valid word reads as 0 — while making the
 * common access shift + mask + load.
 *
 * A one-entry translation cache (the last page touched) short-circuits
 * the segment dispatch entirely for the dominant same-page access
 * streams (stack frames, array walks); its hit rate is exported as the
 * `vm.mem_fast_rate` gauge.
 *
 * *Validity* is not this class's job: the Machine checks segment
 * bounds (globals end, heap brk, live stack spans) before touching the
 * image, exactly as the seed interpreter did, so segfault behavior is
 * bit-identical. The image only requires that accessed addresses lie
 * in some segment.
 */

#ifndef STM_VM_MEMORY_IMAGE_HH
#define STM_VM_MEMORY_IMAGE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/types.hh"

namespace stm
{

/** Paged data memory for one Machine (word-granular, 8-byte cells). */
class MemoryImage
{
  public:
    static constexpr Addr kPageShift = 12; //!< 4 KiB pages
    static constexpr Addr kPageBytes = Addr{1} << kPageShift;
    static constexpr Addr kPageMask = kPageBytes - 1;
    static constexpr std::size_t kPageWords = kPageBytes / 8;

    MemoryImage();

    MemoryImage(const MemoryImage &) = delete;
    MemoryImage &operator=(const MemoryImage &) = delete;

    /** Load the word cell containing @p addr (0 if never written). */
    Word
    load(Addr addr)
    {
        return *cell(addr);
    }

    /** Store @p value into the word cell containing @p addr. */
    void
    store(Addr addr, Word value)
    {
        *cell(addr) = value;
    }

    /** Total accesses routed through the image. */
    std::uint64_t accesses() const { return accesses_; }
    /** Accesses that hit the one-entry translation cache. */
    std::uint64_t fastHits() const { return fastHits_; }

  private:
    /** One segment's direct-mapped page table. */
    struct Segment
    {
        Addr base = 0;
        std::vector<std::unique_ptr<Word[]>> pages;
    };

    /** Pointer to the (materialized) cell holding @p addr. */
    Word *
    cell(Addr addr)
    {
        ++accesses_;
        Addr page = addr & ~kPageMask;
        if (page == cachedPageBase_) {
            ++fastHits_;
            return cachedPage_ + ((addr & kPageMask) >> 3);
        }
        return cellSlow(addr, page);
    }

    Word *cellSlow(Addr addr, Addr page);
    Segment &segmentFor(Addr addr);

    Segment globals_;
    Segment heap_;
    Segment stacks_;

    // One-entry translation cache: base address of the last page
    // touched and the page's storage.
    Addr cachedPageBase_;
    Word *cachedPage_ = nullptr;

    std::uint64_t accesses_ = 0;
    std::uint64_t fastHits_ = 0;
};

} // namespace stm

#endif // STM_VM_MEMORY_IMAGE_HH
