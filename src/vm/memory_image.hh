/**
 * @file
 * The flat paged data-memory image of one simulated machine, with
 * copy-on-write page sharing for O(dirty-pages) checkpointing.
 *
 * Replaces the seed's `unordered_map<Addr, Word>` with a direct-mapped
 * page table over the fixed address-space layout (isa/types.hh): one
 * table per segment (globals, heap, stacks), indexed by
 * `(addr - segment base) >> kPageShift`. Pages are zero-filled and
 * materialized on first touch, which preserves the map's semantics
 * exactly — a never-written valid word reads as 0 — while making the
 * common access shift + mask + load.
 *
 * Pages are refcounted (`shared_ptr<Word[]>`). fork() snapshots the
 * whole image by copying the page *tables* — O(pages), bumping every
 * page's refcount — so a checkpoint costs nothing per untouched page.
 * A store privatizes its page first when the refcount shows another
 * owner (checkpoint or forked sibling): copy the 4 KiB once, then
 * write in place forever after. Fork cost is therefore O(pages
 * touched since the last fork), not O(memory).
 *
 * A one-entry translation cache (the last page touched) short-circuits
 * the segment dispatch entirely for the dominant same-page access
 * streams (stack frames, array walks); its hit rate is exported as the
 * `vm.mem_fast_rate` gauge. The cache is *write-capable*, so it may
 * only ever hold an exclusively-owned page — a cached shared page
 * would let stores bypass the copy-on-write check. Loads of shared
 * pages are served uncached, and fork() invalidates the cache because
 * it shares every page.
 *
 * *Validity* is not this class's job: the Machine checks segment
 * bounds (globals end, heap brk, live stack spans) before touching the
 * image, exactly as the seed interpreter did, so segfault behavior is
 * bit-identical. The image only requires that accessed addresses lie
 * in some segment.
 */

#ifndef STM_VM_MEMORY_IMAGE_HH
#define STM_VM_MEMORY_IMAGE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/types.hh"

namespace stm
{

/**
 * An immutable snapshot of one MemoryImage: the three segments' page
 * tables with every page co-owned. Cheap to copy (vector of
 * refcounted pointers); the pages themselves are frozen by the CoW
 * discipline — any writer privatizes before touching them.
 */
struct MemorySnapshot
{
    std::vector<std::shared_ptr<Word[]>> globals;
    std::vector<std::shared_ptr<Word[]>> heap;
    std::vector<std::shared_ptr<Word[]>> stacks;
    std::uint64_t accesses = 0;
    std::uint64_t fastHits = 0;

    /** Materialized pages across all three segments. */
    std::size_t pageCount() const;
    /** Retained bytes if this snapshot were the sole page owner. */
    std::size_t approxBytes() const;
};

/** Paged data memory for one Machine (word-granular, 8-byte cells). */
class MemoryImage
{
  public:
    static constexpr Addr kPageShift = 12; //!< 4 KiB pages
    static constexpr Addr kPageBytes = Addr{1} << kPageShift;
    static constexpr Addr kPageMask = kPageBytes - 1;
    static constexpr std::size_t kPageWords = kPageBytes / 8;

    MemoryImage();

    MemoryImage(const MemoryImage &) = delete;
    MemoryImage &operator=(const MemoryImage &) = delete;

    /** Load the word cell containing @p addr (0 if never written). */
    Word
    load(Addr addr)
    {
        ++accesses_;
        Addr page = addr & ~kPageMask;
        if (page == cachedPageBase_) {
            ++fastHits_;
            return cachedPage_[(addr & kPageMask) >> 3];
        }
        return loadSlow(addr, page);
    }

    /** Store @p value into the word cell containing @p addr. */
    void
    store(Addr addr, Word value)
    {
        ++accesses_;
        Addr page = addr & ~kPageMask;
        if (page == cachedPageBase_) {
            ++fastHits_;
            cachedPage_[(addr & kPageMask) >> 3] = value;
            return;
        }
        storeSlow(addr, page, value);
    }

    /**
     * Snapshot the image by sharing every materialized page
     * (O(pages) pointer copies — no page data moves). Invalidates the
     * translation cache: formerly-exclusive pages are now co-owned,
     * so the next store to each privatizes it.
     */
    MemorySnapshot fork();

    /**
     * Adopt @p snap's pages, discarding the current contents. The
     * snapshot stays valid (pages are co-owned until written).
     */
    void restore(const MemorySnapshot &snap);

    /** Total accesses routed through the image. */
    std::uint64_t accesses() const { return accesses_; }
    /** Accesses that hit the one-entry translation cache. */
    std::uint64_t fastHits() const { return fastHits_; }

  private:
    /** One segment's direct-mapped page table. */
    struct Segment
    {
        Addr base = 0;
        std::vector<std::shared_ptr<Word[]>> pages;
    };

    Word loadSlow(Addr addr, Addr page);
    void storeSlow(Addr addr, Addr page, Word value);
    Segment &segmentFor(Addr addr);
    std::shared_ptr<Word[]> &materialize(Addr addr);

    Segment globals_;
    Segment heap_;
    Segment stacks_;

    // One-entry translation cache: base address of the last page
    // touched and the page's storage. Only ever holds a page this
    // image owns exclusively (see file comment).
    Addr cachedPageBase_;
    Word *cachedPage_ = nullptr;

    std::uint64_t accesses_ = 0;
    std::uint64_t fastHits_ = 0;
};

} // namespace stm

#endif // STM_VM_MEMORY_IMAGE_HH
