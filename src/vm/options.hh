/**
 * @file
 * Configuration of one simulated run: scheduler policy, hardware
 * geometry, step budget, and workload inputs.
 */

#ifndef STM_VM_OPTIONS_HH
#define STM_VM_OPTIONS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache.hh"
#include "isa/types.hh"

namespace stm
{

/** Thread interleaving policy. */
struct SchedulerOptions
{
    /** Instructions a thread runs before a round-robin switch. */
    std::uint32_t quantum = 50;
    /**
     * Probability of preempting a thread right before it performs a
     * shared-memory access (globals/heap). This is how concurrency
     * bugs are made to manifest with controllable, seeded likelihood.
     */
    double preemptSharedProb = 0.0;
    /** PRNG seed; every run is deterministic given the seed. */
    std::uint64_t seed = 1;
};

/** Full machine configuration for one run. */
struct MachineOptions
{
    SchedulerOptions sched;
    std::size_t lbrEntries = 16;
    std::size_t lcrEntries = 16;
    CacheGeometry cache;
    /** Hang detection budget (total retired instructions). */
    std::uint64_t maxSteps = 2000000;
    /** Arguments placed in r1..rN of main. */
    std::vector<Word> mainArgs;
    /** Per-run overrides of global initial values (workload input). */
    std::vector<std::pair<std::string, std::vector<Word>>>
        globalOverrides;
};

} // namespace stm

#endif // STM_VM_OPTIONS_HH
