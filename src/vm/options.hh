/**
 * @file
 * Configuration of one simulated run: scheduler policy, hardware
 * geometry, step budget, and workload inputs.
 */

#ifndef STM_VM_OPTIONS_HH
#define STM_VM_OPTIONS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache.hh"
#include "isa/types.hh"

namespace stm
{

/** Thread interleaving policy. */
struct SchedulerOptions
{
    /** Instructions a thread runs before a round-robin switch. */
    std::uint32_t quantum = 50;
    /**
     * Probability of preempting a thread right before it performs a
     * shared-memory access (globals/heap). This is how concurrency
     * bugs are made to manifest with controllable, seeded likelihood.
     */
    double preemptSharedProb = 0.0;
    /** PRNG seed; every run is deterministic given the seed. */
    std::uint64_t seed = 1;
};

/**
 * Asynchronous interrupt delivery. Delivery is seeded exactly like
 * preemption: when `prob > 0` and the program registers an interrupt
 * handler, the interpreter draws one extra Bernoulli sample from the
 * run's RNG stream before every user-mode (CPL3) instruction; on a hit
 * the handler runs to its `iret` in a side interpreter before the
 * interrupted instruction executes. With `prob == 0.0` (the default)
 * no draw is made, so runs are bit-identical to builds without the
 * interrupt machinery — this is the contract that keeps all existing
 * golden fingerprints pinned.
 */
struct InterruptOptions
{
    /** Per-user-instruction delivery probability (0 disables). */
    double prob = 0.0;
    /**
     * Step budget for a single handler activation; exceeding it ends
     * the run with Outcome::StepLimit (a deterministic "interrupt
     * storm / wedged handler" symptom).
     */
    std::uint32_t handlerStepBudget = 4096;
};

/**
 * Interpreter dispatch strategy. Every mode produces bit-identical
 * RunResults — the threaded and switch loops share one handler-body
 * include and the golden corpus pins both (test_golden_determinism) —
 * so the choice is pure mechanism, not semantics.
 */
enum class DispatchMode : std::uint8_t {
    Auto,     //!< threaded where compiled in, else the portable switch
    Threaded, //!< prefer threaded (falls back if not compiled in)
    Switch,   //!< force the portable switch loop
};

/** Full machine configuration for one run. */
struct MachineOptions
{
    SchedulerOptions sched;
    std::size_t lbrEntries = 16;
    std::size_t lcrEntries = 16;
    CacheGeometry cache;
    /** Hang detection budget (total retired instructions). */
    std::uint64_t maxSteps = 2000000;
    /** Arguments placed in r1..rN of main. */
    std::vector<Word> mainArgs;
    /** Per-run overrides of global initial values (workload input). */
    std::vector<std::pair<std::string, std::vector<Word>>>
        globalOverrides;

    /** Asynchronous interrupt delivery (off by default). */
    InterruptOptions irq;

    /**
     * Dispatch mechanism knobs. Result-invariant by construction, so
     * deliberately NOT part of fingerprintMachineOptions(): a run
     * cached under threaded dispatch may be served to a switch-mode
     * campaign and vice versa.
     */
    DispatchMode dispatch = DispatchMode::Auto;
    /** Fuse profile-selected superinstructions at predecode time. */
    bool enableSuperinstructions = true;
};

} // namespace stm

#endif // STM_VM_OPTIONS_HH
