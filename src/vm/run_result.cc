#include "vm/run_result.hh"

namespace stm
{

std::string
runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Completed: return "completed";
      case RunOutcome::SegFault: return "segfault";
      case RunOutcome::AssertFailed: return "assert-failed";
      case RunOutcome::ErrorLogged: return "error-logged";
      case RunOutcome::Deadlock: return "deadlock";
      case RunOutcome::StepLimit: return "hang";
      case RunOutcome::ArithmeticFault: return "arithmetic-fault";
    }
    return "?";
}

} // namespace stm
