/**
 * @file
 * The observable result of one simulated program run: outcome,
 * failure information, program output, collected LBR/LCR profiles,
 * CBI sampling observations, and instruction-count statistics.
 *
 * RunResult is the interface between the execution substrate and the
 * diagnosis layer: LBRLOG/LCRLOG read the profiles, LBRA/LCRA label
 * runs by outcome, CBI reads the sampled predicate counts, and the
 * overhead benches read the instruction counts.
 */

#ifndef STM_VM_RUN_RESULT_HH
#define STM_VM_RUN_RESULT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hw/bts.hh"
#include "hw/lbr.hh"
#include "hw/lcr.hh"
#include "isa/instruction.hh"
#include "isa/types.hh"

namespace stm
{

/** How a run ended. */
enum class RunOutcome : std::uint8_t {
    Completed,       //!< ran to completion (output may still be wrong)
    SegFault,        //!< invalid memory access
    AssertFailed,    //!< AssertEq failed
    ErrorLogged,     //!< a failure-logging call executed
    Deadlock,        //!< every live thread blocked
    StepLimit,       //!< hang: exceeded the step budget
    ArithmeticFault, //!< division by zero
};

/** Human-readable outcome name. */
std::string runOutcomeName(RunOutcome outcome);

/** Details of a failure. */
struct FailureInfo
{
    RunOutcome kind = RunOutcome::Completed;
    ThreadId thread = 0;
    std::uint32_t instrIndex = 0;
    /** Log-site id for ErrorLogged; kSegfaultSite for fault-like ends. */
    LogSiteId site = kSegfaultSite;
    std::string message;

    bool operator==(const FailureInfo &) const = default;
};

/** Which hardware record a profile snapshot came from. */
enum class ProfileKind : std::uint8_t { Lbr, Lcr };

/** One LBR/LCR snapshot collected by the driver's profile ioctl. */
struct ProfileRecord
{
    ProfileKind kind = ProfileKind::Lbr;
    LogSiteId site = 0;
    bool successSite = false;
    ThreadId thread = 0;
    std::uint64_t step = 0; //!< global step at collection time
    std::vector<BranchRecord> lbr; //!< newest first
    std::vector<LcrRecord> lcr;    //!< newest first

    bool operator==(const ProfileRecord &) const = default;
};

/** Instruction-count statistics of a run. */
struct RunStats
{
    std::uint64_t userInstructions = 0;
    std::uint64_t kernelInstructions = 0;
    /**
     * Instructions attributable to instrumentation (toggling
     * wrappers, profiling ioctls, enable-at-main, CBI countdown
     * checks). Overhead = instrumentation / (user + kernel).
     */
    std::uint64_t instrumentationInstructions = 0;
    /**
     * The one-time portion of instrumentation work (configure +
     * enable at the entry of main). Excluded by steadyOverhead(),
     * since it amortizes over any production-length run.
     */
    std::uint64_t setupInstructions = 0;
    std::uint64_t branchesRetired = 0;
    std::uint64_t memoryAccesses = 0;
    std::uint64_t contextSwitches = 0;

    std::uint64_t
    baselineInstructions() const
    {
        return userInstructions + kernelInstructions;
    }

    /** Instrumentation overhead as a fraction of baseline work. */
    double
    overhead() const
    {
        std::uint64_t base = baselineInstructions();
        if (base == 0)
            return 0.0;
        return static_cast<double>(instrumentationInstructions) /
               static_cast<double>(base);
    }

    /** Overhead excluding the one-time enable-at-main setup. */
    double
    steadyOverhead() const
    {
        std::uint64_t base = baselineInstructions();
        if (base == 0)
            return 0.0;
        std::uint64_t steady =
            instrumentationInstructions >= setupInstructions
                ? instrumentationInstructions - setupInstructions
                : 0;
        return static_cast<double>(steady) /
               static_cast<double>(base);
    }

    bool operator==(const RunStats &) const = default;
};

/** A CBI branch-predicate key: (source branch, outcome). */
using CbiPredicate = std::pair<SourceBranchId, bool>;

/** Everything observable from one run. */
struct RunResult
{
    RunOutcome outcome = RunOutcome::Completed;
    std::optional<FailureInfo> failure;
    std::vector<Word> output;
    std::vector<ProfileRecord> profiles;
    RunStats stats;

    /** CBI: times each sampled predicate was observed true. */
    std::map<CbiPredicate, std::uint32_t> cbiCounts;
    /** CBI: times each branch site was sampled at all. */
    std::map<SourceBranchId, std::uint32_t> cbiSiteSamples;

    /**
     * CCI: sampled interleaving predicates at memory accesses,
     * keyed by (access pc, observed-remote-interaction flag).
     */
    std::map<std::pair<Addr, bool>, std::uint32_t> cciCounts;
    /** CCI: times each access pc was sampled at all. */
    std::map<Addr, std::uint32_t> cciSiteSamples;

    /** BTS: the whole-execution branch trace, when enabled. */
    std::vector<BtsEntry> btsTrace;

    /**
     * PBI: coherence events sampled through performance-counter
     * overflow interrupts, keyed by (pc, state, store) packed the
     * same way as EventKey::coherence's payload: (pc, (state<<1)|st).
     */
    std::map<std::pair<Addr, std::uint8_t>, std::uint32_t> pbiSamples;

    /** True if the run ended in any fail-stop way. */
    bool
    failStop() const
    {
        return outcome != RunOutcome::Completed;
    }

    /**
     * Bit-exact equality over every observable field; the run cache's
     * verify mode leans on this to assert replay identity.
     */
    bool operator==(const RunResult &) const = default;

    /** The last profile of kind @p kind at @p site, if any. */
    const ProfileRecord *
    lastProfile(ProfileKind kind, LogSiteId site) const
    {
        const ProfileRecord *found = nullptr;
        for (const auto &p : profiles) {
            if (p.kind == kind && p.site == site)
                found = &p;
        }
        return found;
    }
};

} // namespace stm

#endif // STM_VM_RUN_RESULT_HH
