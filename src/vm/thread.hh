/**
 * @file
 * A simulated software thread. Each thread is pinned to its own core
 * (core id == thread id), so the per-core LBR and the per-thread LCR
 * ring are both private to the thread — the paper's SMT-sharing
 * caveat (Section 4.2.1) is out of scope here and documented in
 * DESIGN.md.
 */

#ifndef STM_VM_THREAD_HH
#define STM_VM_THREAD_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/types.hh"

namespace stm
{

/** Scheduler-visible thread states. */
enum class ThreadState : std::uint8_t {
    Ready,
    BlockedOnMutex,
    BlockedOnJoin,
    Done,
};

/** One simulated thread. */
struct Thread
{
    ThreadId id = 0;
    ThreadState state = ThreadState::Ready;
    std::array<Word, kNumRegs> regs{};
    std::uint32_t pc = 0;

    /** Shadow stack of return addresses (call/ret). */
    std::vector<std::uint32_t> callStack;

    /** Valid while BlockedOnMutex. */
    Addr waitMutex = 0;
    /** Valid while BlockedOnJoin. */
    ThreadId joinTarget = 0;

    /** CBI sampling countdown (geometric). */
    std::uint32_t cbiCountdown = 0;
    /** CCI sampling countdown (geometric). */
    std::uint32_t cciCountdown = 0;

    /**
     * Current privilege level: 3 (user) or 0 (kernel). Threads start
     * in ring 3; SysEnter/interrupt delivery drop to ring 0 and
     * SysRet/Iret return to ring 3.
     */
    std::uint8_t cpl = 3;
    /**
     * Return pc saved by SysEnter, consumed by SysRet. One slot is
     * enough: SysEnter faults at CPL0, so stubs cannot nest.
     */
    std::uint32_t sysRetPc = 0;

    bool runnable() const { return state == ThreadState::Ready; }

    Addr stackLow() const { return layout::stackBase(id); }
    Addr stackHigh() const
    {
        return layout::stackBase(id) + layout::kStackSize;
    }
};

} // namespace stm

#endif // STM_VM_THREAD_HH
