#include "vm/vm_stats.hh"

#include <mutex>

namespace stm
{

namespace
{

std::mutex &
vmStatsMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

StatGroup &
vmStats()
{
    static StatGroup stats("vm");
    return stats;
}

void
resetVmStats()
{
    std::lock_guard<std::mutex> lock(vmStatsMutex());
    vmStats().reset();
}

void
recordVmRun(const VmRunSample &sample)
{
    std::lock_guard<std::mutex> lock(vmStatsMutex());
    StatGroup &stats = vmStats();
    ++stats.counter("runs");
    stats.counter("steps") += sample.steps;
    stats.counter("wall_micros") += sample.wallMicros;
    stats.counter("mem_accesses") += sample.memAccesses;
    stats.counter("mem_fast_hits") += sample.memFastHits;
    stats.counter("cache_lookups") += sample.cacheLookups;
    stats.counter("cache_mru_hits") += sample.cacheMruHits;

    auto rate = [](std::uint64_t num, std::uint64_t den) {
        return den == 0 ? 0.0
                        : static_cast<double>(num) /
                              static_cast<double>(den);
    };
    std::uint64_t wall = stats.value("wall_micros");
    stats.gauge("steps_per_sec")
        .set(wall == 0 ? 0.0
                       : static_cast<double>(stats.value("steps")) *
                             1e6 / static_cast<double>(wall));
    stats.gauge("mru_hit_rate")
        .set(rate(stats.value("cache_mru_hits"),
                  stats.value("cache_lookups")));
    stats.gauge("mem_fast_rate")
        .set(rate(stats.value("mem_fast_hits"),
                  stats.value("mem_accesses")));
}

} // namespace stm
