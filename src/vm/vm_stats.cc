#include "vm/vm_stats.hh"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace stm
{

namespace
{

std::mutex &
vmStatsMutex()
{
    static std::mutex mu;
    return mu;
}

std::atomic<bool> pairProfilingEnabled{false};

std::mutex &
pairMutex()
{
    static std::mutex mu;
    return mu;
}

std::uint64_t *
pairTable()
{
    static std::uint64_t table[kOpcodePairTableSize] = {};
    return table;
}

} // namespace

StatGroup &
vmStats()
{
    static StatGroup stats("vm");
    return stats;
}

void
resetVmStats()
{
    std::lock_guard<std::mutex> lock(vmStatsMutex());
    vmStats().reset();
}

void
recordVmRun(const VmRunSample &sample)
{
    std::lock_guard<std::mutex> lock(vmStatsMutex());
    StatGroup &stats = vmStats();
    ++stats.counter("runs");
    stats.counter("steps") += sample.steps;
    stats.counter("wall_micros") += sample.wallMicros;
    stats.counter("mem_accesses") += sample.memAccesses;
    stats.counter("mem_fast_hits") += sample.memFastHits;
    stats.counter("cache_lookups") += sample.cacheLookups;
    stats.counter("cache_mru_hits") += sample.cacheMruHits;
    stats.counter("fused_pairs") += sample.fusedPairs;
    stats.counter("irq_delivered") += sample.irqDelivered;
    stats.counter("irq_handler_steps") += sample.irqHandlerSteps;

    auto rate = [](std::uint64_t num, std::uint64_t den) {
        return den == 0 ? 0.0
                        : static_cast<double>(num) /
                              static_cast<double>(den);
    };
    std::uint64_t wall = stats.value("wall_micros");
    stats.gauge("steps_per_sec")
        .set(wall == 0 ? 0.0
                       : static_cast<double>(stats.value("steps")) *
                             1e6 / static_cast<double>(wall));
    stats.gauge("mru_hit_rate")
        .set(rate(stats.value("cache_mru_hits"),
                  stats.value("cache_lookups")));
    stats.gauge("mem_fast_rate")
        .set(rate(stats.value("mem_fast_hits"),
                  stats.value("mem_accesses")));
    stats.gauge("super_hit_rate")
        .set(rate(2 * stats.value("fused_pairs"),
                  stats.value("steps")));
}

void
setOpcodePairProfiling(bool enabled)
{
    pairProfilingEnabled.store(enabled, std::memory_order_relaxed);
}

bool
opcodePairProfilingEnabled()
{
    return pairProfilingEnabled.load(std::memory_order_relaxed);
}

void
accumulateOpcodePairs(const std::uint64_t *table)
{
    std::lock_guard<std::mutex> lock(pairMutex());
    std::uint64_t *global = pairTable();
    for (std::size_t i = 0; i < kOpcodePairTableSize; ++i)
        global[i] += table[i];
}

std::vector<OpcodePairCount>
opcodePairHistogram(std::size_t top_n)
{
    std::vector<OpcodePairCount> rows;
    {
        std::lock_guard<std::mutex> lock(pairMutex());
        const std::uint64_t *global = pairTable();
        for (std::size_t i = 0; i < kOpcodePairTableSize; ++i) {
            if (global[i] == 0)
                continue;
            OpcodePairCount row;
            row.first = static_cast<Opcode>(i / kOpcodeCount);
            row.second = static_cast<Opcode>(i % kOpcodeCount);
            row.count = global[i];
            rows.push_back(row);
        }
    }
    std::sort(rows.begin(), rows.end(),
              [](const OpcodePairCount &a, const OpcodePairCount &b) {
                  return a.count > b.count;
              });
    if (top_n > 0 && rows.size() > top_n)
        rows.resize(top_n);
    return rows;
}

void
resetOpcodePairHistogram()
{
    std::lock_guard<std::mutex> lock(pairMutex());
    std::uint64_t *global = pairTable();
    for (std::size_t i = 0; i < kOpcodePairTableSize; ++i)
        global[i] = 0;
}

} // namespace stm
