/**
 * @file
 * Process-wide interpreter throughput statistics, in the same style as
 * exec/run_pool's execStats(): a global StatGroup that every Machine
 * run folds its hot-path counters into once, at the end of run().
 *
 * Counters (cumulative across runs):
 *  - runs, steps, wall_micros
 *  - mem_accesses, mem_fast_hits (paged-image same-page fast path)
 *  - cache_lookups, cache_mru_hits (per-set MRU-way hint fast path)
 *
 * Gauges (recomputed on every fold):
 *  - steps_per_sec: cumulative steps / cumulative wall time
 *  - mru_hit_rate: cache_mru_hits / cache_lookups
 *  - mem_fast_rate: mem_fast_hits / mem_accesses
 */

#ifndef STM_VM_VM_STATS_HH
#define STM_VM_VM_STATS_HH

#include <cstdint>

#include "support/stats.hh"

namespace stm
{

/** The cumulative interpreter stat group ("vm"). */
StatGroup &vmStats();

/** Reset the cumulative interpreter statistics (bench sections). */
void resetVmStats();

/** One finished run's hot-path totals, folded into vmStats(). */
struct VmRunSample
{
    std::uint64_t steps = 0;
    std::uint64_t wallMicros = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t memFastHits = 0;
    std::uint64_t cacheLookups = 0;
    std::uint64_t cacheMruHits = 0;
};

/** Thread-safe: called by Machine::run() on pool workers. */
void recordVmRun(const VmRunSample &sample);

} // namespace stm

#endif // STM_VM_VM_STATS_HH
