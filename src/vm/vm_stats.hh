/**
 * @file
 * Process-wide interpreter throughput statistics, in the same style as
 * exec/run_pool's execStats(): a global StatGroup that every Machine
 * run folds its hot-path counters into once, at the end of run().
 *
 * Counters (cumulative across runs):
 *  - runs, steps, wall_micros
 *  - mem_accesses, mem_fast_hits (paged-image same-page fast path)
 *  - cache_lookups, cache_mru_hits (per-set MRU-way hint fast path)
 *  - fused_pairs (superinstructions retired; each covers two steps)
 *
 * Gauges (recomputed on every fold):
 *  - steps_per_sec: cumulative steps / cumulative wall time
 *  - mru_hit_rate: cache_mru_hits / cache_lookups
 *  - mem_fast_rate: mem_fast_hits / mem_accesses
 *  - super_hit_rate: 2 * fused_pairs / steps (share of retired
 *    instructions executed inside a superinstruction)
 *
 * This header also hosts the opcode-pair profiling channel behind the
 * superinstruction selection: with setOpcodePairProfiling(true) every
 * Machine runs the portable switch loop over an *unfused* stream and
 * histograms consecutive (opcode, opcode) retirements; the aggregate
 * table (opcodePairHistogram) is what chose the fused token set (see
 * bench_vm_throughput --pair-histogram and DESIGN.md §13).
 */

#ifndef STM_VM_VM_STATS_HH
#define STM_VM_VM_STATS_HH

#include <cstdint>
#include <vector>

#include "isa/opcode.hh"
#include "support/stats.hh"

namespace stm
{

/** The cumulative interpreter stat group ("vm"). */
StatGroup &vmStats();

/** Reset the cumulative interpreter statistics (bench sections). */
void resetVmStats();

/** One finished run's hot-path totals, folded into vmStats(). */
struct VmRunSample
{
    std::uint64_t steps = 0;
    std::uint64_t wallMicros = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t memFastHits = 0;
    std::uint64_t cacheLookups = 0;
    std::uint64_t cacheMruHits = 0;
    std::uint64_t fusedPairs = 0;
    /**
     * Interrupt machinery totals: delivered interrupts and handler
     * instructions retired in the side interpreter (which never count
     * toward `steps`; see Machine::serviceInterrupt).
     */
    std::uint64_t irqDelivered = 0;
    std::uint64_t irqHandlerSteps = 0;
};

/** Thread-safe: called by Machine::run() on pool workers. */
void recordVmRun(const VmRunSample &sample);

// ---- opcode-pair profiling (superinstruction selection) ----

/** Dense (first, second) opcode-pair table size. */
constexpr std::size_t kOpcodePairTableSize =
    kOpcodeCount * kOpcodeCount;

/**
 * Globally enable/disable opcode-pair profiling. While enabled,
 * Machines force the switch interpreter over unfused streams (so the
 * histogram sees architectural opcodes, never fused tokens) and fold
 * their local pair tables into the global histogram at run end.
 */
void setOpcodePairProfiling(bool enabled);

/** Whether pair profiling is on (relaxed atomic; read per run). */
bool opcodePairProfilingEnabled();

/**
 * Fold one run's local table (kOpcodePairTableSize entries, indexed
 * first * kOpcodeCount + second) into the global histogram.
 */
void accumulateOpcodePairs(const std::uint64_t *table);

/** One aggregated histogram row. */
struct OpcodePairCount
{
    Opcode first = Opcode::Nop;
    Opcode second = Opcode::Nop;
    std::uint64_t count = 0;
};

/**
 * The aggregate histogram, non-zero rows sorted by descending count.
 * @p top_n > 0 truncates to the hottest rows.
 */
std::vector<OpcodePairCount> opcodePairHistogram(std::size_t top_n = 0);

/** Zero the global histogram. */
void resetOpcodePairHistogram();

} // namespace stm

#endif // STM_VM_VM_STATS_HH
