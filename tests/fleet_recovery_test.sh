#!/bin/sh
# Multi-process durable collector checks, driven through the real
# stm_collector binary (the in-process equivalents live in
# tests/test_fleet_durable.cc):
#
#   1. Partitioned vs single: two collector processes each ingest half
#      of one bug's fleet reports into a shared durable directory; the
#      merge coordinator's ranking must be byte-identical to a single
#      collector's over the union.
#
#   2. Crash recovery: a collector is killed mid-epoch (--crash-after
#      uses _exit, so buffered WAL bytes are genuinely lost), then
#      restarted over the same directory with the full report stream
#      re-sent (at-least-once transport). The final ranking must be
#      byte-identical to an uninterrupted run's.
#
# Usage: fleet_recovery_test.sh <path-to-stm_collector> [work-dir]

set -eu

COLLECTOR=${1:?usage: fleet_recovery_test.sh <stm_collector> [work-dir]}
WORK=${2:-$(mktemp -d)}
BUG=cp

say() { printf '== %s\n' "$*"; }
die() { printf 'FAIL: %s\n' "$*" >&2; exit 1; }

rm -rf "$WORK/single" "$WORK/pair" "$WORK/crash" "$WORK/clean"
mkdir -p "$WORK/single" "$WORK/pair" "$WORK/crash" "$WORK/clean"

# --- 1. single vs two partitions + merge --------------------------------

say "single collector over the full report stream"
"$COLLECTOR" "$BUG" --durable "$WORK/single" --id 1 --epoch-every 7 \
    --ranking-out "$WORK/single/rank.txt" >/dev/null

say "two partitioned collectors into a shared directory"
"$COLLECTOR" "$BUG" --durable "$WORK/pair" --id 1 --partition 0/2 \
    --epoch-every 5 >/dev/null
"$COLLECTOR" "$BUG" --durable "$WORK/pair" --id 2 --partition 1/2 \
    --epoch-every 3 >/dev/null

say "coordinator merge"
"$COLLECTOR" --merge "$WORK/pair" \
    --ranking-out "$WORK/pair/rank.txt" >/dev/null

cmp "$WORK/single/rank.txt" "$WORK/pair/rank.txt" ||
    die "merged two-collector ranking differs from single-collector"
say "merged ranking is byte-identical to the single-collector run"

# --- 2. kill mid-epoch, restart, reconverge -----------------------------

say "uninterrupted reference run"
"$COLLECTOR" "$BUG" --durable "$WORK/clean" --id 1 --epoch-every 4 \
    --ranking-out "$WORK/clean/rank.txt" >/dev/null

say "run that dies mid-epoch (_exit, WAL tail unflushed)"
status=0
"$COLLECTOR" "$BUG" --durable "$WORK/crash" --id 1 --epoch-every 4 \
    --crash-after 9 >/dev/null || status=$?
[ "$status" -eq 42 ] || die "expected simulated-crash exit 42, got $status"
[ -n "$(ls "$WORK/crash"/snap-1-*.stms 2>/dev/null)" ] ||
    die "crashed run left no snapshot behind"

say "restart over the same directory, full stream re-sent"
"$COLLECTOR" "$BUG" --durable "$WORK/crash" --id 1 --epoch-every 4 \
    --ranking-out "$WORK/crash/rank.txt" > "$WORK/crash/restart.log"
grep -q "recovered:" "$WORK/crash/restart.log" ||
    die "restarted collector did not report recovery"

cmp "$WORK/clean/rank.txt" "$WORK/crash/rank.txt" ||
    die "post-recovery ranking differs from uninterrupted run"
say "post-recovery ranking is byte-identical to the uninterrupted run"

say "OK"
