/**
 * @file
 * Unit tests for the baselines: the Liblit statistical-debugging
 * scores, CBI sampling behavior and end-to-end diagnosis, and the
 * PBI/CCI concurrency baselines.
 */

#include <gtest/gtest.h>

#include "baseline/cbi.hh"
#include "baseline/cci.hh"
#include "baseline/liblit.hh"
#include "baseline/pbi.hh"
#include "corpus/registry.hh"
#include "program/transform.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

// ---- Liblit scores ---------------------------------------------------------

TEST(Liblit, PerfectPredictorHasHighImportance)
{
    LiblitTally tally;
    tally.trueInFailing = 100;
    tally.trueInSucceeding = 0;
    tally.obsInFailing = 100;
    tally.obsInSucceeding = 100;
    LiblitScore score = liblitScore(tally, 100);
    EXPECT_DOUBLE_EQ(score.failure, 1.0);
    EXPECT_DOUBLE_EQ(score.context, 0.5);
    EXPECT_DOUBLE_EQ(score.increase, 0.5);
    EXPECT_GT(score.importance, 0.6);
}

TEST(Liblit, NonDiscriminatingPredicateIsPruned)
{
    // True in half the failing and half the succeeding runs where
    // observed: Failure == Context == 0.5 => Increase 0 => pruned.
    LiblitTally tally;
    tally.trueInFailing = 50;
    tally.trueInSucceeding = 50;
    tally.obsInFailing = 100;
    tally.obsInSucceeding = 100;
    LiblitScore score = liblitScore(tally, 100);
    EXPECT_DOUBLE_EQ(score.increase, 0.0);
    EXPECT_DOUBLE_EQ(score.importance, 0.0);
}

TEST(Liblit, FailingOnlyObservationIsContextPruned)
{
    // A predicate whose site only executes in failing runs:
    // Context = 1 = Failure, so CBI prunes it (the sort case in
    // EXPERIMENTS.md).
    LiblitTally tally;
    tally.trueInFailing = 20;
    tally.obsInFailing = 20;
    LiblitScore score = liblitScore(tally, 100);
    EXPECT_DOUBLE_EQ(score.importance, 0.0);
}

TEST(Liblit, UnobservedPredicateScoresZero)
{
    LiblitTally tally;
    LiblitScore score = liblitScore(tally, 100);
    EXPECT_DOUBLE_EQ(score.importance, 0.0);
}

TEST(Liblit, MoreFailingObservationsRankHigher)
{
    LiblitTally few;
    few.trueInFailing = 2;
    few.obsInFailing = 2;
    few.obsInSucceeding = 100;
    LiblitTally many = few;
    many.trueInFailing = 50;
    many.obsInFailing = 50;
    LiblitScore a = liblitScore(few, 100);
    LiblitScore b = liblitScore(many, 100);
    EXPECT_GT(b.importance, a.importance);
}

// ---- CBI ---------------------------------------------------------------------

TEST(Cbi, DiagnosesCpWithManyRuns)
{
    BugSpec bug = corpus::bugById("cp");
    CbiOptions opts;
    opts.failureRuns = 800;
    opts.successRuns = 800;
    CbiResult result =
        runCbi(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(result.completed);
    std::size_t rank =
        result.positionOfBranch(bug.truth.rootCauseBranch);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 3u);
}

TEST(Cbi, FailsWithFewRuns)
{
    // The diagnosis-latency story: at 1/100 sampling, a handful of
    // runs almost never samples the root-cause site.
    BugSpec bug = corpus::bugById("cp");
    CbiOptions opts;
    opts.failureRuns = 5;
    opts.successRuns = 5;
    CbiResult result =
        runCbi(bug.program, bug.failing, bug.succeeding, opts);
    std::size_t rank =
        result.completed
            ? result.positionOfBranch(bug.truth.rootCauseBranch)
            : 0;
    EXPECT_EQ(rank, 0u);
}

TEST(Cbi, SamplingRateControlsObservationCount)
{
    BugSpec bug = corpus::bugById("rm");
    CbiOptions sparse;
    sparse.meanPeriod = 10000.0;
    sparse.failureRuns = 20;
    sparse.successRuns = 20;
    CbiResult sparseResult =
        runCbi(bug.program, bug.failing, bug.succeeding, sparse);

    CbiOptions dense;
    dense.meanPeriod = 2.0;
    dense.failureRuns = 20;
    dense.successRuns = 20;
    CbiResult denseResult =
        runCbi(bug.program, bug.failing, bug.succeeding, dense);
    // Denser sampling observes far more predicates.
    EXPECT_GT(denseResult.ranking.size(),
              sparseResult.ranking.size());
}

TEST(Cbi, RankingSortedByImportance)
{
    BugSpec bug = corpus::bugById("rm");
    CbiOptions opts;
    opts.failureRuns = 100;
    opts.successRuns = 100;
    CbiResult result =
        runCbi(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(result.completed);
    for (std::size_t i = 1; i < result.ranking.size(); ++i) {
        EXPECT_GE(result.ranking[i - 1].score.importance,
                  result.ranking[i].score.importance);
    }
}

// ---- PBI / CCI -------------------------------------------------------------

TEST(Pbi, SamplesTheFpeWithEnoughRuns)
{
    BugSpec bug = corpus::bugById("mozilla-js3");
    PbiOptions opts;
    opts.period = 3;
    opts.failureRuns = 300;
    opts.successRuns = 300;
    PbiResult result =
        runPbi(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(result.completed);
    std::size_t rank = result.positionOf(
        bug.truth.fpeInstr, bug.truth.fpeState, bug.truth.fpeStore);
    // PBI finds the FPE with enough runs, though error-path noise
    // events (sampled more often than the once-per-run FPE) can
    // outrank it — unlike LCRA's deterministic rank 1.
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 10u);
}

TEST(Pbi, HardwareCountingIsNearlyFree)
{
    BugSpec bug = corpus::bugById("mozilla-js3");
    transform::clear(*bug.program);
    transform::applyPbi(*bug.program, 0x05, 0x01, 50);
    Machine machine(bug.program, bug.succeeding.forRun(0));
    RunResult run = machine.run();
    // Counting itself charges nothing; only rare overflow interrupts.
    EXPECT_LT(run.stats.steadyOverhead(), 0.05);
    transform::clear(*bug.program);
}

TEST(Cci, SoftwareSamplingIsExpensive)
{
    BugSpec bug = corpus::bugById("mozilla-js3");
    transform::clear(*bug.program);
    transform::applyCci(*bug.program, 100.0);
    Machine machine(bug.program, bug.succeeding.forRun(0));
    RunResult run = machine.run();
    // Per-access fast-path instrumentation: an order of magnitude
    // above anything LBR/LCR-based (CCI's published 10x worst case).
    EXPECT_GT(run.stats.steadyOverhead(), 0.10);
    transform::clear(*bug.program);
}

TEST(Cci, CampaignCompletesAndRanks)
{
    BugSpec bug = corpus::bugById("mozilla-js3");
    CciOptions opts;
    opts.meanPeriod = 5.0; // dense sampling to keep the test fast
    opts.failureRuns = 100;
    opts.successRuns = 100;
    CciResult result =
        runCci(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(result.completed);
    EXPECT_FALSE(result.ranking.empty());
    std::size_t rank = result.positionOf(bug.truth.fpeInstr, true);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 5u);
}

} // namespace
} // namespace stm
