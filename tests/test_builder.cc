/**
 * @file
 * Unit tests for the ProgramBuilder: emission, labels, structured
 * control flow, globals layout, and — crucially — the fall-through
 * normalization invariant of Figure 2 / [40].
 */

#include <gtest/gtest.h>

#include "program/builder.hh"
#include "support/logging.hh"

namespace stm
{
namespace
{

using namespace regs;

TEST(Builder, EmptyMainBuilds)
{
    ProgramBuilder b("t");
    b.func("main");
    b.halt();
    ProgramPtr prog = b.build();
    EXPECT_EQ(prog->entry, 0u);
    EXPECT_EQ(prog->code.size(), 1u);
    EXPECT_EQ(prog->functions.size(), 1u);
    EXPECT_EQ(prog->files.size(), 1u); // auto-registered t.c
}

TEST(Builder, MissingMainPanics)
{
    ProgramBuilder b("t");
    b.func("helper");
    b.ret();
    EXPECT_THROW(b.build(), PanicError);
}

TEST(Builder, UnboundLabelPanics)
{
    ProgramBuilder b("t");
    b.func("main");
    Label l = b.newLabel();
    b.jmp(l);
    b.halt();
    EXPECT_THROW(b.build(), PanicError);
}

TEST(Builder, DoubleBindPanics)
{
    ProgramBuilder b("t");
    b.func("main");
    Label l = b.newLabel();
    b.bind(l);
    EXPECT_THROW(b.bind(l), PanicError);
}

TEST(Builder, DuplicateGlobalPanics)
{
    ProgramBuilder b("t");
    b.global("x", 1);
    EXPECT_THROW(b.global("x", 2), PanicError);
}

TEST(Builder, UnclosedIfPanicsAtBuild)
{
    ProgramBuilder b("t");
    b.func("main");
    b.beginIf(Cond::Eq, r1, r2);
    b.halt();
    EXPECT_THROW(b.build(), PanicError);
}

TEST(Builder, GlobalsLaidOutSequentially)
{
    ProgramBuilder b("t");
    b.global("a", 2);
    b.global("b", 3);
    b.func("main");
    b.halt();
    ProgramPtr prog = b.build();
    EXPECT_EQ(prog->symbolAddr("a"), layout::kGlobalBase);
    EXPECT_EQ(prog->symbolAddr("b"), layout::kGlobalBase + 16);
    EXPECT_EQ(prog->globalsEnd(), layout::kGlobalBase + 16 + 24);
}

TEST(Builder, CacheLineAlignmentRequestsHonored)
{
    ProgramBuilder b("t");
    b.global("a", 1);
    b.global("b", 1, {}, true); // cache-line aligned
    b.func("main");
    b.halt();
    ProgramPtr prog = b.build();
    EXPECT_EQ(prog->symbolAddr("b") % 64, 0u);
    EXPECT_NE(prog->symbolByName("a").addr,
              prog->symbolByName("b").addr);
}

TEST(Builder, HasGlobalReflectsDeclarations)
{
    ProgramBuilder b("t");
    EXPECT_FALSE(b.hasGlobal("x"));
    b.global("x", 1);
    EXPECT_TRUE(b.hasGlobal("x"));
}

TEST(Builder, SymbolWordAddressing)
{
    ProgramBuilder b("t");
    b.global("arr", 8);
    b.func("main");
    b.halt();
    ProgramPtr prog = b.build();
    EXPECT_EQ(prog->symbolAddr("arr", 3),
              prog->symbolAddr("arr") + 24);
}

// ---- normalization (Figure 2) --------------------------------------------

TEST(Builder, BrIfEmitsNormalizedPair)
{
    ProgramBuilder b("t");
    b.func("main");
    Label l = b.newLabel();
    SourceBranchId id = b.brIf(Cond::Lt, r1, r2, l, "x < y");
    b.bind(l);
    b.halt();
    ProgramPtr prog = b.build();

    ASSERT_TRUE(prog->isNormalized());
    const Instruction &br = prog->code[0];
    const Instruction &ft = prog->code[1];
    EXPECT_EQ(br.op, Opcode::Br);
    EXPECT_EQ(ft.op, Opcode::Jmp);
    EXPECT_EQ(br.srcBranch, id);
    EXPECT_EQ(ft.srcBranch, id);
    EXPECT_TRUE(br.outcomeWhenTaken);
    EXPECT_FALSE(ft.outcomeWhenTaken);
    EXPECT_EQ(ft.target, 2u); // harmless: jumps to next instruction
}

TEST(Builder, BeginIfBranchTakenMeansConditionFalse)
{
    ProgramBuilder b("t");
    b.func("main");
    b.beginIf(Cond::Eq, r1, r2, "x == y");
    b.nop();
    b.endIf();
    b.halt();
    ProgramPtr prog = b.build();

    const Instruction &br = prog->code[0];
    // Figure 2: the emitted jump is taken when the source condition
    // is FALSE.
    EXPECT_EQ(br.cond, Cond::Ne);
    EXPECT_FALSE(br.outcomeWhenTaken);
    EXPECT_TRUE(prog->isNormalized());
}

TEST(Builder, WhileIsRotatedWithBottomTest)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 0);
    b.movi(r2, 3);
    SourceBranchId id = b.beginWhile(Cond::Lt, r1, r2, "i < n");
    b.addi(r1, r1, 1);
    b.endWhile();
    b.halt();
    ProgramPtr prog = b.build();

    // The first loop instruction is the preheader jump to the test.
    const Instruction &pre = prog->code[2];
    EXPECT_EQ(pre.op, Opcode::Jmp);
    EXPECT_EQ(pre.srcBranch, kNoSourceBranch);
    // The test is a Br at the bottom, taken => another iteration.
    const Instruction &test = prog->code[pre.target];
    EXPECT_EQ(test.op, Opcode::Br);
    EXPECT_EQ(test.srcBranch, id);
    EXPECT_TRUE(test.outcomeWhenTaken);
    EXPECT_TRUE(prog->isNormalized());
    EXPECT_EQ(prog->branch(id).brIndex, pre.target);
}

TEST(Builder, ElseSplitsTheBlocks)
{
    ProgramBuilder b("t");
    b.func("main");
    b.beginIf(Cond::Gt, r1, r2);
    b.movi(r3, 1);
    b.beginElse();
    b.movi(r3, 2);
    b.endIf();
    b.halt();
    ProgramPtr prog = b.build();
    EXPECT_TRUE(prog->isNormalized());
    // then-block exit jump skips the else block.
    bool foundExitJmp = false;
    for (const auto &inst : prog->code) {
        if (inst.op == Opcode::Jmp &&
            inst.srcBranch == kNoSourceBranch &&
            inst.target == prog->code.size() - 1) {
            foundExitJmp = true;
        }
    }
    EXPECT_TRUE(foundExitJmp);
}

TEST(Builder, CallsResolveForwardReferences)
{
    ProgramBuilder b("t");
    b.func("main");
    b.call("helper"); // defined later
    b.halt();
    b.func("helper");
    b.ret();
    ProgramPtr prog = b.build();
    EXPECT_EQ(prog->code[0].target,
              prog->functionByName("helper").entry);
}

TEST(Builder, LogSitesRecorded)
{
    ProgramBuilder b("t");
    b.func("main");
    b.line(31);
    LogSiteId fail = b.logError("boom", "ap_log_error");
    LogSiteId info = b.logInfo("fyi");
    LogSiteId check = b.logCheckpoint("value: %d");
    b.halt();
    ProgramPtr prog = b.build();

    EXPECT_TRUE(prog->logSite(fail).failureSite);
    EXPECT_FALSE(prog->logSite(info).failureSite);
    EXPECT_TRUE(prog->logSite(check).failureSite);
    EXPECT_EQ(prog->logSite(fail).logFunction, "ap_log_error");
    EXPECT_EQ(prog->logSite(fail).loc.line, 31u);
    // A checkpoint is a non-stopping LogInfo instruction.
    EXPECT_EQ(prog->code[prog->logSite(check).instrIndex].op,
              Opcode::LogInfo);
    EXPECT_EQ(prog->failureSites().size(), 2u);
}

TEST(Builder, BranchNoteAndLocationKept)
{
    ProgramBuilder b("t");
    b.file("dir/x.c");
    b.line(93);
    b.func("main");
    SourceBranchId id =
        b.beginIf(Cond::Lt, r1, r2, "i + num_merged < nfiles");
    b.endIf();
    b.halt();
    ProgramPtr prog = b.build();
    EXPECT_EQ(prog->branch(id).note, "i + num_merged < nfiles");
    EXPECT_EQ(prog->branch(id).loc.line, 93u);
    EXPECT_EQ(prog->fileName(prog->branch(id).loc.file), "dir/x.c");
}

TEST(Builder, FunctionContainingLocatesRanges)
{
    ProgramBuilder b("t");
    b.func("main");
    b.call("h");
    b.halt();
    b.func("h");
    b.nop();
    b.ret();
    ProgramPtr prog = b.build();
    EXPECT_EQ(prog->functionContaining(0)->name, "main");
    EXPECT_EQ(prog->functionContaining(3)->name, "h");
    EXPECT_EQ(prog->functionContaining(99), nullptr);
}

TEST(Builder, BreakAndContinueTargetLoopEdges)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 0);
    b.movi(r2, 10);
    b.beginWhile(Cond::Lt, r1, r2);
    {
        b.movi(r3, 5);
        b.beginIf(Cond::Eq, r1, r3);
        b.breakWhile();
        b.endIf();
        b.continueWhile();
    }
    b.endWhile();
    b.halt();
    EXPECT_NO_THROW(b.build());
}

TEST(Builder, BreakOutsideLoopPanics)
{
    ProgramBuilder b("t");
    b.func("main");
    EXPECT_THROW(b.breakWhile(), PanicError);
}

TEST(Builder, EmitAfterBuildPanics)
{
    ProgramBuilder b("t");
    b.func("main");
    b.halt();
    b.build();
    EXPECT_THROW(b.nop(), PanicError);
}

} // namespace
} // namespace stm
