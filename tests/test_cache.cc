/**
 * @file
 * Unit and property tests for the MESI cache substrate: single-core
 * state transitions, cross-core snooping, LRU eviction, writebacks,
 * false sharing — the machinery whose "state observed prior to the
 * access" output feeds the proposed LCR.
 */

#include <gtest/gtest.h>

#include "cache/bus.hh"
#include "cache/cache.hh"
#include "cache/mesi.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace stm
{
namespace
{

constexpr Addr kA = 0x600000;
constexpr Addr kB = 0x600040; // different line (64-byte blocks)
constexpr Addr kSameLineAsA = 0x600008;

TEST(Mesi, NamesAndUnitMasks)
{
    EXPECT_EQ(mesiName(MesiState::Invalid), "I");
    EXPECT_EQ(mesiName(MesiState::Modified), "M");
    EXPECT_EQ(mesiUnitMask(MesiState::Invalid), 0x01);
    EXPECT_EQ(mesiUnitMask(MesiState::Shared), 0x02);
    EXPECT_EQ(mesiUnitMask(MesiState::Exclusive), 0x04);
    EXPECT_EQ(mesiUnitMask(MesiState::Modified), 0x08);
}

TEST(Bus, ColdLoadObservesInvalidFillsExclusive)
{
    Bus bus;
    bus.addCore(0);
    EXPECT_EQ(bus.access(0, kA, false), MesiState::Invalid);
    EXPECT_EQ(bus.cache(0).stateOf(kA), MesiState::Exclusive);
}

TEST(Bus, ExclusiveLoadHitStaysExclusive)
{
    Bus bus;
    bus.addCore(0);
    bus.access(0, kA, false);
    EXPECT_EQ(bus.access(0, kA, false), MesiState::Exclusive);
    EXPECT_EQ(bus.cache(0).stateOf(kA), MesiState::Exclusive);
}

TEST(Bus, StoreToExclusiveSilentlyUpgrades)
{
    Bus bus;
    bus.addCore(0);
    bus.access(0, kA, false);
    EXPECT_EQ(bus.access(0, kA, true), MesiState::Exclusive);
    EXPECT_EQ(bus.cache(0).stateOf(kA), MesiState::Modified);
    EXPECT_EQ(bus.stats().value("bus_upgrades"), 0u);
}

TEST(Bus, ColdStoreObservesInvalidFillsModified)
{
    Bus bus;
    bus.addCore(0);
    EXPECT_EQ(bus.access(0, kA, true), MesiState::Invalid);
    EXPECT_EQ(bus.cache(0).stateOf(kA), MesiState::Modified);
}

TEST(Bus, RemoteReadDowngradesExclusiveToShared)
{
    Bus bus;
    bus.addCore(0);
    bus.addCore(1);
    bus.access(0, kA, false); // core0: E
    EXPECT_EQ(bus.access(1, kA, false), MesiState::Invalid);
    EXPECT_EQ(bus.cache(0).stateOf(kA), MesiState::Shared);
    EXPECT_EQ(bus.cache(1).stateOf(kA), MesiState::Shared);
}

TEST(Bus, RemoteReadOfModifiedCausesWriteback)
{
    Bus bus;
    bus.addCore(0);
    bus.addCore(1);
    bus.access(0, kA, true); // core0: M
    bus.access(1, kA, false);
    EXPECT_EQ(bus.cache(0).stateOf(kA), MesiState::Shared);
    EXPECT_EQ(bus.cache(0).stats().value("writebacks"), 1u);
}

TEST(Bus, SharedStoreUpgradesAndInvalidatesOthers)
{
    Bus bus;
    bus.addCore(0);
    bus.addCore(1);
    bus.access(0, kA, false);
    bus.access(1, kA, false); // both S
    EXPECT_EQ(bus.access(0, kA, true), MesiState::Shared);
    EXPECT_EQ(bus.cache(0).stateOf(kA), MesiState::Modified);
    EXPECT_EQ(bus.cache(1).stateOf(kA), MesiState::Invalid);
    EXPECT_EQ(bus.stats().value("bus_upgrades"), 1u);
}

TEST(Bus, RemoteWriteInvalidates)
{
    Bus bus;
    bus.addCore(0);
    bus.addCore(1);
    bus.access(0, kA, false); // core0: E
    bus.access(1, kA, true);  // core1 writes
    EXPECT_EQ(bus.cache(0).stateOf(kA), MesiState::Invalid);
    // The invalid read after a remote write: the LCR's bread and
    // butter (Table 3's FPEs).
    EXPECT_EQ(bus.access(0, kA, false), MesiState::Invalid);
}

TEST(Bus, FalseSharingIsLineGranular)
{
    Bus bus;
    bus.addCore(0);
    bus.addCore(1);
    bus.access(0, kA, false);          // core0 reads word 0
    bus.access(1, kSameLineAsA, true); // core1 writes word 1
    // Same 64-byte line: core0 loses its copy (Section 5.3's
    // false-sharing limitation).
    EXPECT_EQ(bus.access(0, kA, false), MesiState::Invalid);
}

TEST(Bus, DistinctLinesDoNotInterfere)
{
    Bus bus;
    bus.addCore(0);
    bus.addCore(1);
    bus.access(0, kA, false);
    bus.access(1, kB, true);
    EXPECT_EQ(bus.access(0, kA, false), MesiState::Exclusive);
}

TEST(Bus, OtherSharersReflectsOccupancy)
{
    Bus bus;
    bus.addCore(0);
    bus.addCore(1);
    Addr block = bus.cache(0).blockOf(kA);
    EXPECT_FALSE(bus.otherSharers(0, block));
    bus.access(1, kA, false);
    EXPECT_TRUE(bus.otherSharers(0, block));
}

TEST(Bus, ResetDropsAllState)
{
    Bus bus;
    bus.addCore(0);
    bus.access(0, kA, true);
    bus.reset();
    EXPECT_EQ(bus.cache(0).stateOf(kA), MesiState::Invalid);
}

TEST(Bus, DenseCoreIdsEnforced)
{
    Bus bus;
    bus.addCore(0);
    EXPECT_THROW(bus.addCore(2), PanicError);
    EXPECT_THROW(bus.cache(5), PanicError);
}

// ---- geometry / eviction ---------------------------------------------------

TEST(L1Cache, GeometryValidation)
{
    CacheGeometry bad;
    bad.blockBytes = 48; // not a power of two
    EXPECT_THROW(L1Cache(0, bad), FatalError);
    CacheGeometry zeroAssoc;
    zeroAssoc.assoc = 0;
    EXPECT_THROW(L1Cache(0, zeroAssoc), FatalError);
}

TEST(L1Cache, EvictionIsLruWithinSet)
{
    // Tiny cache: 2 sets x 2 ways x 64B blocks = 256 bytes.
    CacheGeometry geo;
    geo.sizeBytes = 256;
    geo.assoc = 2;
    geo.blockBytes = 64;
    Bus bus(geo);
    bus.addCore(0);

    // Three blocks mapping to the same set (stride = 2 blocks).
    Addr a = 0x600000, b = 0x600080, c = 0x600100;
    bus.access(0, a, false);
    bus.access(0, b, false);
    bus.access(0, a, false); // a is now MRU
    bus.access(0, c, false); // evicts b (LRU)
    EXPECT_EQ(bus.cache(0).stateOf(a), MesiState::Exclusive);
    EXPECT_EQ(bus.cache(0).stateOf(b), MesiState::Invalid);
    EXPECT_EQ(bus.cache(0).stateOf(c), MesiState::Exclusive);
    EXPECT_EQ(bus.cache(0).stats().value("evictions"), 1u);
}

TEST(L1Cache, EvictingModifiedLineWritesBack)
{
    CacheGeometry geo;
    geo.sizeBytes = 128; // 2 sets x 1 way
    geo.assoc = 1;
    geo.blockBytes = 64;
    Bus bus(geo);
    bus.addCore(0);
    bus.access(0, 0x600000, true);  // M
    bus.access(0, 0x600080, false); // same set: evicts the M line
    EXPECT_EQ(bus.cache(0).stats().value("writebacks"), 1u);
    // Re-access observes Invalid: "invalid states could be caused by
    // both cache eviction and remote writes" (Section 5.3).
    EXPECT_EQ(bus.access(0, 0x600000, false), MesiState::Invalid);
}

/**
 * Property sweep: from every (initial state, operation) pair, the
 * requester observes the initial state and lands in the MESI-mandated
 * next state.
 */
struct MesiTransition
{
    MesiState initial;
    bool store;
    MesiState nextState;
};

class MesiTransitionSweep
    : public ::testing::TestWithParam<MesiTransition>
{
  protected:
    /** Drive core 0's line at kA into @p state. */
    void
    prepare(Bus &bus, MesiState state)
    {
        switch (state) {
          case MesiState::Invalid:
            break;
          case MesiState::Exclusive:
            bus.access(0, kA, false);
            break;
          case MesiState::Modified:
            bus.access(0, kA, true);
            break;
          case MesiState::Shared:
            bus.access(0, kA, false);
            bus.access(1, kA, false);
            break;
        }
        ASSERT_EQ(bus.cache(0).stateOf(kA), state);
    }
};

TEST_P(MesiTransitionSweep, ObservesInitialLandsInNext)
{
    const MesiTransition &t = GetParam();
    Bus bus;
    bus.addCore(0);
    bus.addCore(1);
    prepare(bus, t.initial);
    EXPECT_EQ(bus.access(0, kA, t.store), t.initial);
    EXPECT_EQ(bus.cache(0).stateOf(kA), t.nextState);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransitions, MesiTransitionSweep,
    ::testing::Values(
        MesiTransition{MesiState::Invalid, false,
                       MesiState::Exclusive},
        MesiTransition{MesiState::Invalid, true,
                       MesiState::Modified},
        MesiTransition{MesiState::Exclusive, false,
                       MesiState::Exclusive},
        MesiTransition{MesiState::Exclusive, true,
                       MesiState::Modified},
        MesiTransition{MesiState::Modified, false,
                       MesiState::Modified},
        MesiTransition{MesiState::Modified, true,
                       MesiState::Modified},
        MesiTransition{MesiState::Shared, false, MesiState::Shared},
        MesiTransition{MesiState::Shared, true,
                       MesiState::Modified}));

/**
 * Coherence invariant: after any random access sequence, at most one
 * core holds a given line in M or E, and M/E never coexists with
 * copies elsewhere.
 */
TEST(Bus, SingleWriterInvariantUnderRandomTraffic)
{
    Bus bus;
    for (std::uint32_t c = 0; c < 3; ++c)
        bus.addCore(c);
    Pcg32 rng(123);
    const Addr blocks[] = {0x600000, 0x600040, 0x600080};
    for (int step = 0; step < 2000; ++step) {
        std::uint32_t core = rng.nextBounded(3);
        Addr addr = blocks[rng.nextBounded(3)];
        bus.access(core, addr, rng.nextBool(0.5));
        for (Addr a : blocks) {
            int owners = 0, holders = 0;
            for (std::uint32_t c = 0; c < 3; ++c) {
                MesiState s = bus.cache(c).stateOf(a);
                if (s != MesiState::Invalid)
                    ++holders;
                if (s == MesiState::Modified ||
                    s == MesiState::Exclusive) {
                    ++owners;
                }
            }
            ASSERT_LE(owners, 1);
            if (owners == 1)
                ASSERT_EQ(holders, 1);
        }
    }
}

} // namespace
} // namespace stm
