/**
 * @file
 * Unit tests for the CFG (successors/predecessors, interprocedural
 * edges, reachability, block leaders) and the Table 5 useful-branch
 * analyzer.
 */

#include <gtest/gtest.h>

#include "program/builder.hh"
#include "program/cfg.hh"
#include "program/static_analysis.hh"

namespace stm
{
namespace
{

using namespace regs;

ProgramPtr
diamondProgram(LogSiteId *site)
{
    // if (r1 < r2) r3 = 1 else r3 = 2; error-log; halt
    ProgramBuilder b("diamond");
    b.func("main");
    b.beginIf(Cond::Lt, r1, r2, "cond");
    b.movi(r3, 1);
    b.beginElse();
    b.movi(r3, 2);
    b.endIf();
    *site = b.logError("after join");
    b.halt();
    return b.build();
}

TEST(Cfg, BranchHasTwoSuccessors)
{
    LogSiteId site;
    ProgramPtr prog = diamondProgram(&site);
    Cfg cfg(*prog);
    const auto &succs = cfg.succs(0); // the Br
    ASSERT_EQ(succs.size(), 2u);
    bool taken = false, fall = false;
    for (const auto &e : succs) {
        taken = taken || e.kind == EdgeKind::CondTaken;
        fall = fall || e.kind == EdgeKind::Fallthrough;
    }
    EXPECT_TRUE(taken);
    EXPECT_TRUE(fall);
}

TEST(Cfg, JumpHasOneSuccessor)
{
    LogSiteId site;
    ProgramPtr prog = diamondProgram(&site);
    Cfg cfg(*prog);
    // instruction 1 is the normalization jump
    ASSERT_EQ(prog->code[1].op, Opcode::Jmp);
    const auto &succs = cfg.succs(1);
    ASSERT_EQ(succs.size(), 1u);
    EXPECT_EQ(succs[0].kind, EdgeKind::JumpTaken);
}

TEST(Cfg, LogErrorIsFailStopNoSuccessors)
{
    LogSiteId site;
    ProgramPtr prog = diamondProgram(&site);
    Cfg cfg(*prog);
    EXPECT_TRUE(
        cfg.succs(prog->logSite(site).instrIndex).empty());
}

TEST(Cfg, BothArmsReachTheJoin)
{
    LogSiteId site;
    ProgramPtr prog = diamondProgram(&site);
    Cfg cfg(*prog);
    std::vector<bool> reach =
        cfg.canReach(prog->logSite(site).instrIndex);
    for (std::uint32_t i = 0;
         i < prog->logSite(site).instrIndex; ++i) {
        EXPECT_TRUE(reach[i]) << "instr " << i;
    }
}

TEST(Cfg, HaltDoesNotReachEarlierCode)
{
    LogSiteId site;
    ProgramPtr prog = diamondProgram(&site);
    Cfg cfg(*prog);
    // Nothing reaches instruction 0 except itself.
    std::vector<bool> reach = cfg.canReach(0);
    int reachable = 0;
    for (bool r : reach)
        reachable += r ? 1 : 0;
    EXPECT_EQ(reachable, 1);
}

TEST(Cfg, CallAndReturnEdgesAreInterprocedural)
{
    ProgramBuilder b("calls");
    b.func("main");
    std::uint32_t callIdx = b.call("helper");
    LogSiteId site = b.logError("after call");
    b.halt();
    b.func("helper");
    b.nop();
    std::uint32_t retIdx = b.ret();
    ProgramPtr prog = b.build();
    Cfg cfg(*prog);

    // Call edge: call site -> callee entry.
    bool callEdge = false;
    for (const auto &e : cfg.succs(callIdx)) {
        if (e.kind == EdgeKind::Call &&
            e.to == prog->functionByName("helper").entry) {
            callEdge = true;
        }
    }
    EXPECT_TRUE(callEdge);

    // Return edge: ret -> instruction after the call.
    bool retEdge = false;
    for (const auto &e : cfg.succs(retIdx)) {
        if (e.kind == EdgeKind::Return && e.to == callIdx + 1)
            retEdge = true;
    }
    EXPECT_TRUE(retEdge);

    // Reachability flows through the callee.
    std::vector<bool> reach =
        cfg.canReach(prog->logSite(site).instrIndex);
    EXPECT_TRUE(reach[prog->functionByName("helper").entry]);
}

TEST(Cfg, BlockLeaders)
{
    LogSiteId site;
    ProgramPtr prog = diamondProgram(&site);
    Cfg cfg(*prog);
    EXPECT_TRUE(cfg.leaders()[0]); // entry
    // Branch targets and fallthroughs after branches are leaders.
    EXPECT_TRUE(cfg.leaders()[prog->code[0].target]);
    // The leader of the log site's block is at or before it.
    std::uint32_t leader =
        cfg.blockLeader(prog->logSite(site).instrIndex);
    EXPECT_LE(leader, prog->logSite(site).instrIndex);
    EXPECT_TRUE(cfg.leaders()[leader]);
}

// ---- useful-branch analysis ------------------------------------------------

TEST(UsefulBranch, DiamondBranchesAreUseful)
{
    // Both outcomes of the diamond's condition reach the site, so
    // every conditional record is useful; the then-exit jump is not.
    LogSiteId site;
    ProgramPtr prog = diamondProgram(&site);
    Cfg cfg(*prog);
    UsefulBranchAnalyzer analyzer(*prog, cfg);
    UsefulBranchStats stats =
        analyzer.analyzeSite(prog->logSite(site).instrIndex);
    EXPECT_GT(stats.paths, 0u);
    EXPECT_GT(stats.ratio, 0.0);
    EXPECT_LT(stats.ratio, 1.0); // the exit jump is inferable
}

TEST(UsefulBranch, StraightLineGuardIsNotUseful)
{
    // if (c) { error } — the error block is only reachable via the
    // true edge, so the record is inferable from reaching the site.
    ProgramBuilder b("line");
    b.func("main");
    b.beginIf(Cond::Eq, r1, r2);
    LogSiteId site = b.logError("guarded");
    b.endIf();
    b.halt();
    ProgramPtr prog = b.build();
    Cfg cfg(*prog);
    UsefulBranchAnalyzer analyzer(*prog, cfg);
    UsefulBranchStats stats =
        analyzer.analyzeSite(prog->logSite(site).instrIndex);
    EXPECT_GT(stats.paths, 0u);
    EXPECT_EQ(stats.usefulRecords, 0u);
}

TEST(UsefulBranch, LoopTestIsUseful)
{
    // A site after a loop: each loop-test record could have gone
    // either way (iterate again or exit), so it is useful.
    ProgramBuilder b("loop");
    b.func("main");
    b.movi(r1, 0);
    b.movi(r2, 4);
    b.beginWhile(Cond::Lt, r1, r2);
    b.addi(r1, r1, 1);
    b.endWhile();
    LogSiteId site = b.logError("after loop");
    b.halt();
    ProgramPtr prog = b.build();
    Cfg cfg(*prog);
    UsefulBranchAnalyzer analyzer(*prog, cfg);
    UsefulBranchStats stats =
        analyzer.analyzeSite(prog->logSite(site).instrIndex);
    EXPECT_GT(stats.usefulRecords, 0u);
    EXPECT_GT(stats.ratio, 0.4);
}

TEST(UsefulBranch, DepthBoundsPathLength)
{
    ProgramBuilder b("deep");
    b.func("main");
    b.movi(r1, 0);
    b.movi(r2, 100);
    b.beginWhile(Cond::Lt, r1, r2);
    b.addi(r1, r1, 1);
    b.endWhile();
    LogSiteId site = b.logError("after big loop");
    b.halt();
    ProgramPtr prog = b.build();
    Cfg cfg(*prog);
    UsefulBranchAnalyzer analyzer(*prog, cfg);
    UsefulBranchOptions opts;
    opts.lbrDepth = 4;
    UsefulBranchStats stats =
        analyzer.analyzeSite(prog->logSite(site).instrIndex, opts);
    EXPECT_GT(stats.paths, 0u);
    // No path may carry more records than the LBR depth.
    EXPECT_LE(stats.totalRecords, stats.paths * 4);
}

TEST(UsefulBranch, AnalyzeAllSitesAveragesAcrossSites)
{
    ProgramBuilder b("multi");
    b.func("main");
    b.beginIf(Cond::Lt, r1, r2);
    b.logError("site a");
    b.endIf();
    b.beginIf(Cond::Gt, r1, r2);
    b.logError("site b");
    b.endIf();
    b.halt();
    ProgramPtr prog = b.build();
    Cfg cfg(*prog);
    UsefulBranchAnalyzer analyzer(*prog, cfg);
    UsefulBranchStats stats = analyzer.analyzeAllSites();
    EXPECT_GT(stats.paths, 0u);
    EXPECT_GE(stats.ratio, 0.0);
    EXPECT_LE(stats.ratio, 1.0);
}

} // namespace
} // namespace stm
