/**
 * @file
 * Tests for CoW machine checkpointing and O(√T) interval replay:
 *
 *  - the differential guarantee — resuming a run from a checkpoint at
 *    any √T-spaced quantum boundary produces a RunResult bit-identical
 *    to the from-scratch run, under both dispatch modes, across a
 *    corpus sample including the kernel/IRQ pack;
 *  - runToStep() pause/continue semantics and perturbation-free
 *    periodic capture;
 *  - RNG stream save/restore (property): a copied Pcg32 mid-run
 *    reproduces the exact remaining draw sequence, and the irqOn=false
 *    zero-draw contract survives a checkpoint/resume round trip;
 *  - the SnapshotStore: timeline recording, latestAtOrBefore seeks,
 *    replayToStep, byte-budget eviction and oversize rejection,
 *    counter names, and concurrent record/seek under RunPool (the
 *    TSan lane's target);
 *  - run-cache verify-from-checkpoint and the checkpointed reactive
 *    re-profile's ranking identity (instrumentation-invariance,
 *    end to end).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "corpus/registry.hh"
#include "diag/auto_diag.hh"
#include "exec/run_cache.hh"
#include "exec/run_pool.hh"
#include "exec/snapshot_store.hh"
#include "program/builder.hh"
#include "program/fingerprint.hh"
#include "support/random.hh"
#include "test_util.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

/** Reset the process-wide snapshot store / run cache after a test. */
struct GlobalStoresGuard
{
    ~GlobalStoresGuard()
    {
        configureSnapshotStore(false);
        configureRunCache(RunCacheMode::Off);
    }
};

/** A looping multi-threaded program with shared-counter races. */
ProgramPtr
contendingProgram(int iters = 40)
{
    ProgramBuilder b("contending");
    b.global("counter", 1, {0}, true);
    b.func("main");
    b.movi(r1, 0);
    b.spawn(r9, "worker", r1);
    b.call("body");
    b.join(r9);
    b.loadg(r2, "counter");
    b.out(r2);
    b.halt();
    b.func("worker");
    b.call("body");
    b.ret();
    b.func("body");
    b.movi(r10, 0);
    b.movi(r11, iters);
    b.beginWhile(Cond::Lt, r10, r11);
    {
        b.loadg(r13, "counter");
        b.addi(r13, r13, 1);
        b.storeg("counter", 0, r13, r14);
        b.addi(r10, r10, 1);
    }
    b.endWhile();
    b.ret();
    return b.build();
}

MachineOptions
preemptingOptions(std::uint64_t seed, std::uint32_t quantum = 7)
{
    MachineOptions opts;
    opts.sched.preemptSharedProb = 0.4;
    opts.sched.quantum = quantum;
    opts.sched.seed = seed;
    return opts;
}

/**
 * The tentpole differential: record checkpoints at √T-spaced quantum
 * boundaries, then resume from EVERY one of them and require a
 * RunResult bit-identical to the from-scratch run — under both
 * dispatch modes. Also asserts the recording run itself is
 * unperturbed by capture.
 */
void
expectResumeMatchesScratch(
    const ProgramPtr &prog, MachineOptions opts,
    const std::shared_ptr<const Instrumentation> &overlay,
    const std::string &what)
{
    for (DispatchMode mode :
         {DispatchMode::Threaded, DispatchMode::Switch}) {
        opts.dispatch = mode;
        const char *modeName =
            mode == DispatchMode::Threaded ? "threaded" : "switch";

        Machine scratchMachine(prog, opts, overlay);
        RunResult scratch = scratchMachine.run();
        std::uint64_t totalSteps = scratchMachine.steps();

        std::uint64_t every = defaultCheckpointInterval(
            totalSteps, opts.sched.quantum);
        std::vector<MachineCheckpointPtr> checkpoints;
        Machine recorder(prog, opts, overlay);
        recorder.enableCheckpoints(
            every, [&](MachineCheckpointPtr ckpt) {
                checkpoints.push_back(std::move(ckpt));
            });
        RunResult recorded = recorder.run();
        EXPECT_TRUE(recorded == scratch)
            << what << " (" << modeName
            << "): periodic capture perturbed the run";
        if (totalSteps > 2 * every) {
            EXPECT_GE(checkpoints.size(), 1u)
                << what << " (" << modeName << "): T=" << totalSteps
                << " every=" << every << " recorded no checkpoints";
        }

        for (const MachineCheckpointPtr &ckpt : checkpoints) {
            ASSERT_LT(ckpt->step, totalSteps);
            Machine resumed(prog, opts, overlay, ckpt);
            RunResult replay = resumed.run();
            EXPECT_TRUE(replay == scratch)
                << what << " (" << modeName
                << "): resume at step " << ckpt->step << " of "
                << totalSteps << " diverged";
        }
    }
}

// ---- differential: resume ≡ scratch --------------------------------------

TEST(CheckpointDifferential, SequentialCorpusSample)
{
    for (const char *id : {"sort", "cp", "mozilla-js3"}) {
        BugSpec bug = corpus::bugById(id);
        expectResumeMatchesScratch(bug.program, bug.failing.forRun(0),
                                   nullptr, id);
    }
}

TEST(CheckpointDifferential, ConcurrencyCorpusSample)
{
    std::vector<BugSpec> bugs = corpus::concurrencyBugs();
    ASSERT_GE(bugs.size(), 2u);
    for (std::size_t i : {std::size_t{0}, bugs.size() - 1}) {
        const BugSpec &bug = bugs[i];
        // A failing seed and a succeeding seed both replay exactly.
        expectResumeMatchesScratch(bug.program, bug.failing.forRun(0),
                                   nullptr, bug.id + "/failing");
        expectResumeMatchesScratch(bug.program,
                                   bug.succeeding.forRun(1), nullptr,
                                   bug.id + "/succeeding");
    }
}

TEST(CheckpointDifferential, KernelCorpusWithInterrupts)
{
    std::vector<BugSpec> bugs = corpus::kernelBugs();
    ASSERT_GE(bugs.size(), 2u);
    for (std::size_t i : {std::size_t{0}, bugs.size() - 1}) {
        const BugSpec &bug = bugs[i];
        expectResumeMatchesScratch(bug.program, bug.failing.forRun(0),
                                   nullptr, bug.id);
    }
}

TEST(CheckpointDifferential, InstrumentedOverlayRun)
{
    // Same-plan resume with live LBR instrumentation: the checkpoint
    // carries the Pmu rings and the resumed hooks keep appending to
    // them.
    BugSpec bug = corpus::bugById("sort");
    Instrumentation plan;
    transform::LbrLogPlan logPlan;
    transform::applyLbrLog(*bug.program, plan, logPlan);
    auto overlay = std::make_shared<const Instrumentation>(plan);
    expectResumeMatchesScratch(bug.program, bug.failing.forRun(0),
                               overlay, "sort+lbrlog");
}

// ---- runToStep -----------------------------------------------------------

TEST(CheckpointPause, RunToStepPausesExactlyAndRunFinishes)
{
    ProgramPtr prog = contendingProgram();
    MachineOptions opts = preemptingOptions(3);

    Machine scratchMachine(prog, opts);
    RunResult scratch = scratchMachine.run();
    std::uint64_t totalSteps = scratchMachine.steps();
    ASSERT_GT(totalSteps, 100u);

    Machine machine(prog, opts);
    MachineCheckpointPtr at = machine.runToStep(totalSteps / 2);
    ASSERT_TRUE(at);
    EXPECT_EQ(at->step, totalSteps / 2);
    // Continuing the SAME machine finishes the identical run.
    RunResult finished = machine.run();
    EXPECT_TRUE(finished == scratch);
}

TEST(CheckpointPause, RepeatedIncreasingSeeksThenResume)
{
    ProgramPtr prog = contendingProgram();
    MachineOptions opts = preemptingOptions(5);

    Machine scratchMachine(prog, opts);
    RunResult scratch = scratchMachine.run();
    std::uint64_t totalSteps = scratchMachine.steps();

    Machine machine(prog, opts);
    MachineCheckpointPtr last;
    for (std::uint64_t frac : {8u, 4u, 2u}) {
        MachineCheckpointPtr ckpt =
            machine.runToStep(totalSteps / frac);
        ASSERT_TRUE(ckpt);
        EXPECT_EQ(ckpt->step, totalSteps / frac);
        last = ckpt;
    }
    // The final pause's checkpoint resumes to the scratch result.
    Machine resumed(prog, opts, nullptr, last);
    RunResult replay = resumed.run();
    EXPECT_TRUE(replay == scratch);

    // Seeking past the end reports the run ended instead.
    Machine beyond(prog, opts);
    EXPECT_EQ(beyond.runToStep(totalSteps + 1), nullptr);
    RunResult completed = beyond.run();
    EXPECT_TRUE(completed == scratch);
}

// ---- RNG save/restore (property) -----------------------------------------

TEST(CheckpointRng, CopiedStreamReproducesRemainingDraws)
{
    Pcg32 driver(test::testSeed());
    for (int trial = 0; trial < 50; ++trial) {
        Pcg32 rng(driver.next(), driver.next() | 1);
        int prefix = static_cast<int>(driver.nextBounded(64));
        for (int i = 0; i < prefix; ++i)
            rng.next();

        Pcg32 restored = rng; // what a checkpoint carries
        for (int i = 0; i < 128; ++i) {
            switch (driver.nextBounded(4)) {
              case 0:
                ASSERT_EQ(rng.next(), restored.next());
                break;
              case 1:
                ASSERT_EQ(rng.nextBounded(17),
                          restored.nextBounded(17));
                break;
              case 2:
                ASSERT_EQ(rng.nextDouble(), restored.nextDouble());
                break;
              default:
                ASSERT_EQ(rng.nextBool(0.3), restored.nextBool(0.3));
                break;
            }
        }
    }
}

TEST(CheckpointRng, IrqOffDrawSequenceSurvivesResume)
{
    // PR 9's contract: with interrupts disarmed there is NO per-step
    // IRQ draw, so the preemption draw sequence — and therefore the
    // interleaving — must be identical whether or not the run took a
    // checkpoint/resume round trip mid-stream. A divergence here
    // would mean restore perturbed the RNG stream position.
    ProgramPtr prog = contendingProgram();
    Pcg32 driver(test::testSeed(0xc4ec4e));
    for (int trial = 0; trial < 8; ++trial) {
        MachineOptions opts =
            preemptingOptions(driver.next() + 1,
                              3 + driver.nextBounded(9));
        ASSERT_EQ(opts.irq.prob, 0.0);

        Machine scratchMachine(prog, opts);
        RunResult scratch = scratchMachine.run();
        std::uint64_t totalSteps = scratchMachine.steps();

        std::uint64_t at = 1 + driver.nextBounded(
            static_cast<std::uint32_t>(totalSteps - 1));
        Machine machine(prog, opts);
        MachineCheckpointPtr ckpt = machine.runToStep(at);
        ASSERT_TRUE(ckpt);
        Machine resumed(prog, opts, nullptr, ckpt);
        RunResult replay = resumed.run();
        ASSERT_TRUE(replay == scratch)
            << "seed " << opts.sched.seed << " resume at " << at;
    }
}

// ---- SnapshotStore -------------------------------------------------------

RunKey
keyFor(const ProgramPtr &prog, const MachineOptions &opts)
{
    return RunKey{fingerprintProgram(*prog),
                  fingerprintMachineOptions(opts), opts.sched.seed};
}

TEST(SnapshotStore, RecordsTimelineAndSeeks)
{
    ProgramPtr prog = contendingProgram();
    MachineOptions opts = preemptingOptions(11);
    RunKey key = keyFor(prog, opts);

    Machine scratchMachine(prog, opts);
    RunResult scratch = scratchMachine.run();
    std::uint64_t totalSteps = scratchMachine.steps();

    SnapshotStore::Options storeOpts;
    storeOpts.everySteps = totalSteps / 6 + 1;
    SnapshotStore store(storeOpts);

    Machine recorder(prog, opts);
    store.arm(recorder, key);
    RunResult recorded = recorder.run();
    EXPECT_TRUE(recorded == scratch);

    std::size_t timeline = store.timelineLength(key);
    EXPECT_GE(timeline, 3u);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_GT(store.bytes(), 0u);

    // latestAtOrBefore: before the first checkpoint there is nothing.
    MachineCheckpointPtr first =
        store.latestAtOrBefore(key, ~std::uint64_t{0});
    ASSERT_TRUE(first);
    EXPECT_EQ(store.latestAtOrBefore(key, 0), nullptr);

    // Seek to an arbitrary mid-run step: the paused state continues
    // to the bit-identical result, and the reached checkpoint is
    // densified back into the timeline.
    std::uint64_t target = totalSteps / 2 + 1;
    MachineCheckpointPtr seek = store.replayToStep(
        prog, nullptr, key, opts, target);
    ASSERT_TRUE(seek);
    EXPECT_EQ(seek->step, target);
    EXPECT_GT(store.timelineLength(key), timeline);
    Machine resumed(prog, opts, nullptr, seek);
    RunResult replay = resumed.run();
    EXPECT_TRUE(replay == scratch);

    // Seeking past the end of the run returns null.
    EXPECT_EQ(store.replayToStep(prog, nullptr, key, opts,
                                 totalSteps + 1000),
              nullptr);

    StatGroup stats = store.statsSnapshot();
    EXPECT_GE(stats.value("saves"), timeline);
    EXPECT_GE(stats.value("restores"), 1u);
    EXPECT_GE(stats.value("hits"), 1u);
    EXPECT_GT(stats.gaugeValue("checkpoint_bytes"), 0.0);
}

TEST(SnapshotStore, SeekOnColdStoreFallsBackToScratch)
{
    ProgramPtr prog = contendingProgram();
    MachineOptions opts = preemptingOptions(13);
    RunKey key = keyFor(prog, opts);

    Machine scratchMachine(prog, opts);
    RunResult scratch = scratchMachine.run();
    std::uint64_t totalSteps = scratchMachine.steps();

    SnapshotStore store;
    MachineCheckpointPtr seek = store.replayToStep(
        prog, nullptr, key, opts, totalSteps / 3);
    ASSERT_TRUE(seek);
    EXPECT_EQ(seek->step, totalSteps / 3);
    EXPECT_EQ(store.statsSnapshot().value("restores"), 0u);

    Machine resumed(prog, opts, nullptr, seek);
    EXPECT_TRUE(resumed.run() == scratch);
}

TEST(SnapshotStore, ByteBudgetEvictsWholeTimelines)
{
    ProgramPtr prog = contendingProgram();

    // One shard and a budget of roughly one timeline: recording many
    // seeds must evict earlier keys whole.
    MachineOptions proto = preemptingOptions(1);
    RunKey protoKey = keyFor(prog, proto);
    SnapshotStore sizing;
    sizing.replayToStep(prog, nullptr, protoKey, proto, 50);
    std::size_t oneTimeline = sizing.bytes();
    ASSERT_GT(oneTimeline, 0u);

    SnapshotStore::Options storeOpts;
    storeOpts.maxBytes = 3 * oneTimeline;
    storeOpts.shards = 1;
    storeOpts.everySteps = 40;
    SnapshotStore store(storeOpts);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        MachineOptions opts = preemptingOptions(seed);
        Machine machine(prog, opts);
        store.arm(machine, keyFor(prog, opts));
        machine.run();
    }
    EXPECT_LE(store.bytes(), storeOpts.maxBytes);
    EXPECT_LT(store.size(), 8u);
    EXPECT_GE(store.statsSnapshot().value("evictions"), 1u);
}

TEST(SnapshotStore, OversizeTimelineKeepsLastFittingPrefix)
{
    ProgramPtr prog = contendingProgram();
    MachineOptions opts = preemptingOptions(17);
    RunKey key = keyFor(prog, opts);

    SnapshotStore::Options storeOpts;
    storeOpts.maxBytes = 1; // nothing fits
    storeOpts.shards = 1;
    storeOpts.everySteps = 40;
    SnapshotStore store(storeOpts);
    Machine machine(prog, opts);
    store.arm(machine, key);
    RunResult recorded = machine.run();
    EXPECT_EQ(recorded.outcome, RunOutcome::Completed);

    EXPECT_EQ(store.size(), 0u);
    EXPECT_GE(store.statsSnapshot().value("oversize"), 1u);
    // Seeks still work — from scratch.
    MachineCheckpointPtr seek =
        store.replayToStep(prog, nullptr, key, opts, 60);
    ASSERT_TRUE(seek);
    EXPECT_EQ(seek->step, 60u);
}

// ---- concurrency (the TSan lane's target) --------------------------------

TEST(SnapshotStore, ConcurrentRecordAndSeekUnderRunPool)
{
    ProgramPtr prog = contendingProgram();
    constexpr std::uint64_t kSeeds = 24;

    // Scratch truth, serially.
    std::vector<RunResult> scratch;
    std::vector<std::uint64_t> steps;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        Machine machine(prog, preemptingOptions(seed));
        scratch.push_back(machine.run());
        steps.push_back(machine.steps());
    }

    SnapshotStore::Options storeOpts;
    storeOpts.everySteps = 64;
    SnapshotStore store(storeOpts);
    RunPool pool(4);

    // Phase 1: workers record timelines concurrently.
    std::uint64_t consumed = pool.runOrdered(
        0, kSeeds,
        [&](std::uint64_t i) {
            MachineOptions opts = preemptingOptions(i + 1);
            Machine machine(prog, opts);
            store.arm(machine, keyFor(prog, opts));
            return machine.run();
        },
        [&](std::uint64_t i, RunResult &&r) {
            EXPECT_TRUE(r == scratch[i]);
            return true;
        });
    EXPECT_EQ(consumed, kSeeds);

    // Phase 2: workers seek concurrently — mixed hits (recorded
    // timelines, LRU refreshes, densifying re-records) while other
    // workers are still recording their own keys.
    consumed = pool.runOrdered(
        0, kSeeds,
        [&](std::uint64_t i) {
            MachineOptions opts = preemptingOptions(i + 1);
            MachineCheckpointPtr seek = store.replayToStep(
                prog, nullptr, keyFor(prog, opts), opts,
                steps[i] / 2);
            EXPECT_TRUE(seek);
            Machine resumed(prog, opts, nullptr, seek);
            return resumed.run();
        },
        [&](std::uint64_t i, RunResult &&r) {
            EXPECT_TRUE(r == scratch[i]);
            return true;
        });
    EXPECT_EQ(consumed, kSeeds);
}

// ---- exec/diag wiring ----------------------------------------------------

TEST(CheckpointWiring, RunCacheVerifiesFromCheckpoint)
{
    GlobalStoresGuard guard;
    configureRunCache(RunCacheMode::Verify);
    configureSnapshotStore(true, /*everySteps=*/64);

    ProgramPtr prog = contendingProgram();
    MachineOptions opts = preemptingOptions(7);
    std::uint64_t progFp = fingerprintProgram(*prog);
    std::uint64_t optionsFp = fingerprintMachineOptions(opts);

    // Miss: executes, records a timeline, inserts the result.
    RunResult first =
        memoizedRun(prog, nullptr, progFp, optionsFp, opts);
    SnapshotStore *store = globalSnapshotStore();
    ASSERT_TRUE(store);
    RunKey key{progFp, optionsFp, opts.sched.seed};
    ASSERT_GE(store->timelineLength(key), 1u);

    // Hit in verify mode: the replay resumes from the newest
    // checkpoint and must still bit-match (a fatal otherwise).
    RunResult second =
        memoizedRun(prog, nullptr, progFp, optionsFp, opts);
    EXPECT_TRUE(second == first);
    EXPECT_GE(store->statsSnapshot().value("restores"), 1u);
    EXPECT_EQ(globalRunCache()->statsSnapshot().value("verified"), 1u);
}

TEST(CheckpointWiring, ReactiveReprofileKeepsLbrRankingIdentical)
{
    // Instrumentation-invariance, end to end: re-profiling the
    // pinning seed under the reactively re-instrumented plan — resumed
    // from a checkpoint recorded under the PRE-pin plan — must leave
    // the LBRA ranking exactly as the from-scratch campaign computes
    // it (the plan swap adds hooks but never perturbs the trajectory,
    // and the failure-site profile it harvests is identical).
    BugSpec bug = corpus::bugById("sort");

    AutoDiagOptions opts;
    AutoDiagResult plain =
        runLbra(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(plain.diagnosed);

    GlobalStoresGuard guard;
    configureSnapshotStore(true);
    AutoDiagOptions ckptOpts;
    ckptOpts.checkpointReprofile = true;
    AutoDiagResult reprofiled = runLbra(bug.program, bug.failing,
                                        bug.succeeding, ckptOpts);
    ASSERT_TRUE(reprofiled.diagnosed);

    EXPECT_EQ(reprofiled.site, plain.site);
    ASSERT_EQ(reprofiled.ranking.size(), plain.ranking.size());
    for (std::size_t i = 0; i < plain.ranking.size(); ++i) {
        EXPECT_EQ(reprofiled.ranking[i].event, plain.ranking[i].event);
        EXPECT_EQ(reprofiled.ranking[i].absence,
                  plain.ranking[i].absence);
        EXPECT_EQ(reprofiled.ranking[i].score, plain.ranking[i].score);
    }
}

} // namespace
} // namespace stm
