/**
 * @file
 * Parameterized validation of the whole bug corpus: every
 * reproduction builds a well-formed, normalized program; its failing
 * workload actually fails the way Table 4 says; its succeeding
 * workload actually succeeds; and the recorded ground truth is
 * internally consistent.
 */

#include <gtest/gtest.h>

#include "corpus/registry.hh"
#include "support/logging.hh"
#include "program/transform.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

std::vector<std::string>
allBugIds()
{
    std::vector<std::string> ids;
    for (const BugSpec &bug : corpus::allBugs())
        ids.push_back(bug.id);
    return ids;
}

std::vector<std::string>
sequentialIds()
{
    std::vector<std::string> ids;
    for (const BugSpec &bug : corpus::sequentialBugs())
        ids.push_back(bug.id);
    return ids;
}

std::vector<std::string>
concurrencyIds()
{
    std::vector<std::string> ids;
    for (const BugSpec &bug : corpus::concurrencyBugs())
        ids.push_back(bug.id);
    return ids;
}

/** Run the workload up to @p budget times; count failures. */
int
failuresIn(const BugSpec &bug, const Workload &workload, int budget)
{
    int failures = 0;
    for (int i = 0; i < budget; ++i) {
        Machine machine(bug.program, workload.forRun(i));
        RunResult run = machine.run();
        if (workload.isFailure(run))
            ++failures;
    }
    return failures;
}

class CorpusEntry : public ::testing::TestWithParam<std::string>
{
  protected:
    BugSpec bug_ = corpus::bugById(GetParam());
};

TEST_P(CorpusEntry, ProgramIsWellFormed)
{
    ASSERT_NE(bug_.program, nullptr);
    EXPECT_FALSE(bug_.program->code.empty());
    EXPECT_TRUE(bug_.program->isNormalized());
    EXPECT_FALSE(bug_.program->functions.empty());
    // Every instruction's file id resolves.
    for (const auto &inst : bug_.program->code)
        EXPECT_LT(inst.loc.file, bug_.program->files.size());
}

TEST_P(CorpusEntry, GroundTruthIsConsistent)
{
    const GroundTruth &truth = bug_.truth;
    if (truth.rootCauseBranch != kNoSourceBranch)
        EXPECT_LT(truth.rootCauseBranch,
                  bug_.program->branches.size());
    if (truth.relatedBranch != kNoSourceBranch)
        EXPECT_LT(truth.relatedBranch,
                  bug_.program->branches.size());
    if (bug_.isConcurrent && !truth.fpeUnreachable)
        EXPECT_LT(truth.fpeInstr, bug_.program->code.size());
    // Sequential entries must name a root-cause or related branch.
    if (!bug_.isConcurrent) {
        EXPECT_TRUE(truth.rootCauseBranch != kNoSourceBranch ||
                    truth.relatedBranch != kNoSourceBranch);
    }
}

TEST_P(CorpusEntry, FailingWorkloadFails)
{
    int budget = bug_.isConcurrent ? 60 : 1;
    EXPECT_GT(failuresIn(bug_, bug_.failing, budget), 0);
}

TEST_P(CorpusEntry, SucceedingWorkloadSucceeds)
{
    int budget = bug_.isConcurrent ? 40 : 1;
    int failures = failuresIn(bug_, bug_.succeeding, budget);
    // Concurrency bugs may rarely manifest even under the benign
    // schedule; sequential ones must be clean.
    if (bug_.isConcurrent)
        EXPECT_LT(failures, budget / 2);
    else
        EXPECT_EQ(failures, 0);
}

TEST_P(CorpusEntry, RunsAreDeterministicPerSeed)
{
    Machine a(bug_.program, bug_.failing.forRun(7));
    Machine b(bug_.program, bug_.failing.forRun(7));
    RunResult ra = a.run();
    RunResult rb = b.run();
    EXPECT_EQ(ra.outcome, rb.outcome);
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_EQ(ra.stats.userInstructions, rb.stats.userInstructions);
}

INSTANTIATE_TEST_SUITE_P(AllBugs, CorpusEntry,
                         ::testing::ValuesIn(allBugIds()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return name;
                         });

// ---- sequential-specific checks -------------------------------------------

class SequentialEntry : public ::testing::TestWithParam<std::string>
{
  protected:
    BugSpec bug_ = corpus::bugById(GetParam());
};

TEST_P(SequentialEntry, SymptomMatchesTable4)
{
    Machine machine(bug_.program, bug_.failing.forRun(0));
    RunResult run = machine.run();
    ASSERT_TRUE(bug_.failing.isFailure(run));
    switch (bug_.symptom) {
      case SymptomKind::ErrorMessage:
        EXPECT_EQ(run.outcome, RunOutcome::ErrorLogged);
        break;
      case SymptomKind::Crash:
        EXPECT_EQ(run.outcome, RunOutcome::SegFault);
        break;
      case SymptomKind::Hang:
        EXPECT_EQ(run.outcome, RunOutcome::StepLimit);
        break;
      default:
        break;
    }
}

TEST_P(SequentialEntry, FailureIsInputDeterministic)
{
    // Sequential failures depend on the input, not on scheduling:
    // every seed of the failing workload fails.
    for (int i = 0; i < 3; ++i) {
        Machine machine(bug_.program, bug_.failing.forRun(i));
        EXPECT_TRUE(bug_.failing.isFailure(machine.run()));
    }
}

INSTANTIATE_TEST_SUITE_P(Sequential, SequentialEntry,
                         ::testing::ValuesIn(sequentialIds()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return name;
                         });

// ---- concurrency-specific checks -------------------------------------------

class ConcurrencyEntry
    : public ::testing::TestWithParam<std::string>
{
  protected:
    BugSpec bug_ = corpus::bugById(GetParam());
};

TEST_P(ConcurrencyEntry, ManifestationIsScheduleDependent)
{
    // Some seeds fail and some succeed under the racy workload: the
    // bug is an interleaving bug, not an input bug.
    int failures = failuresIn(bug_, bug_.failing, 80);
    EXPECT_GT(failures, 0);
    EXPECT_LT(failures, 80);
}

TEST_P(ConcurrencyEntry, DiagnosableBugsExposeTheFpe)
{
    if (bug_.truth.fpeUnreachable)
        GTEST_SKIP() << "paper-expected miss";
    // In at least one failing run, the FPE appears in the failure
    // thread's LCR under Conf2.
    transform::clear(*bug_.program);
    transform::LcrLogPlan plan;
    plan.lcrConfigMask = lcrConfSpaceConsuming().pack();
    transform::applyLcrLog(*bug_.program, plan);

    bool seen = false;
    for (int i = 0; i < 300 && !seen; ++i) {
        Machine machine(bug_.program, bug_.failing.forRun(i));
        RunResult run = machine.run();
        if (!bug_.failing.isFailure(run))
            continue;
        LogSiteId site = kSegfaultSite;
        if (run.failure)
            site = run.failure->site;
        else if (bug_.failing.failureSiteHint)
            site = *bug_.failing.failureSiteHint;
        const ProfileRecord *profile =
            run.lastProfile(ProfileKind::Lcr, site);
        if (!profile)
            continue;
        Addr pc = layout::codeAddr(bug_.truth.fpeInstr);
        for (const auto &rec : profile->lcr) {
            seen = seen || (rec.pc == pc &&
                            rec.observed == bug_.truth.fpeState &&
                            rec.store == bug_.truth.fpeStore);
        }
    }
    transform::clear(*bug_.program);
    EXPECT_TRUE(seen);
}

INSTANTIATE_TEST_SUITE_P(Concurrency, ConcurrencyEntry,
                         ::testing::ValuesIn(concurrencyIds()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return name;
                         });

// ---- registry ---------------------------------------------------------------

TEST(Registry, MatchesTable4Counts)
{
    EXPECT_EQ(corpus::sequentialBugs().size(), 20u);
    EXPECT_EQ(corpus::concurrencyBugs().size(), 11u);
    EXPECT_EQ(corpus::allBugs().size(), 31u);
    EXPECT_EQ(corpus::microBugs().size(), 6u);
}

TEST(Registry, IdsAreUnique)
{
    std::set<std::string> ids;
    for (const BugSpec &bug : corpus::allBugs())
        EXPECT_TRUE(ids.insert(bug.id).second) << bug.id;
}

TEST(Registry, UnknownIdIsFatal)
{
    EXPECT_THROW(corpus::bugById("no-such-bug"), FatalError);
}

TEST(Registry, CppBugsMarkedForCbiNa)
{
    int cpp = 0;
    for (const BugSpec &bug : corpus::sequentialBugs())
        cpp += bug.isCpp ? 1 : 0;
    EXPECT_EQ(cpp, 5); // cppcheck x3 + pbzip x2
}

TEST(Registry, MicroBugsCoverAllSixClasses)
{
    std::set<InterleavingKind> kinds;
    for (const BugSpec &bug : corpus::microBugs())
        kinds.insert(bug.interleaving);
    EXPECT_EQ(kinds.size(), 6u);
}

TEST(Registry, FreshProgramsPerCall)
{
    // Factories must return fresh programs so instrumentation never
    // leaks across experiments.
    BugSpec a = corpus::bugById("sort");
    BugSpec b = corpus::bugById("sort");
    EXPECT_NE(a.program.get(), b.program.get());
}

} // namespace
} // namespace stm
