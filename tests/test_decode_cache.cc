/**
 * @file
 * Tests for the predecode cache (vm/decode_cache.hh) and for the
 * transparency of superinstruction fusion: sharing across runs,
 * overlay-keyed invalidation (scalar knobs do NOT invalidate, hook
 * tables DO), byte-budget LRU eviction and oversize rejection, a
 * concurrent RunPool campaign sharing one predecode (the TSan lane's
 * target), and fused ≡ unfused RunResult equality under seeded
 * preemption across quantum sizes.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/run_pool.hh"
#include "program/builder.hh"
#include "program/fingerprint.hh"
#include "program/transform.hh"
#include "vm/decode_cache.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

/**
 * Give every test a private, freshly-zeroed global cache and restore
 * the default configuration on the way out so no state leaks into
 * other suites.
 */
struct FreshCacheGuard
{
    explicit FreshCacheGuard(std::size_t maxBytes = 0,
                             unsigned shards = 0)
    {
        configureDecodeCache(maxBytes, shards);
    }
    ~FreshCacheGuard() { configureDecodeCache(); }
};

/** A small program that exercises fusable pairs and memory traffic. */
ProgramPtr
pairHeavyProgram(const std::string &name = "pairs", int iters = 16)
{
    ProgramBuilder b(name);
    b.global("acc", 1, {0});
    b.func("main");
    b.movi(r1, 0);          // induction
    b.movi(r2, iters);      // limit
    b.beginWhile(Cond::Lt, r1, r2);
    {
        b.movi(r3, 0x7f);   // movi+and pair
        b.andr(r4, r3, r1);
        b.movi(r5, 3);      // movi+mul pair
        b.mul(r6, r5, r4);  // mul+addi pair
        b.addi(r7, r6, 1);
        b.loadg(r8, "acc"); // load+movi pair
        b.movi(r9, 0);
        b.add(r8, r8, r7);
        b.storeg("acc", 0, r8, r10);
        b.addi(r1, r1, 1);
    }
    b.endWhile();
    b.loadg(r11, "acc");
    b.out(r11);
    b.halt();
    return b.build();
}

/** The unprotected-counter race: output depends on interleaving. */
ProgramPtr
racyCounterProgram()
{
    ProgramBuilder b("racy");
    b.global("counter", 1, {0}, true);
    b.func("main");
    b.movi(r1, 0);
    b.spawn(r9, "worker", r1);
    b.call("body");
    b.join(r9);
    b.loadg(r2, "counter");
    b.out(r2);
    b.halt();
    b.func("worker");
    b.call("body");
    b.ret();
    b.func("body");
    b.movi(r10, 0);
    b.movi(r11, 25);
    b.beginWhile(Cond::Lt, r10, r11);
    {
        b.loadg(r13, "counter");
        b.addi(r13, r13, 1);
        b.storeg("counter", 0, r13, r14);
        b.addi(r10, r10, 1);
    }
    b.endWhile();
    b.ret();
    return b.build();
}

std::uint64_t
cacheStat(const char *name)
{
    return globalDecodeCache().statsSnapshot().value(name);
}

// ---- sharing and keying --------------------------------------------------

TEST(DecodeCache, SecondRunOfAProgramIsAHit)
{
    FreshCacheGuard guard;
    ProgramPtr prog = pairHeavyProgram();

    RunResult a = Machine(prog).run();
    RunResult b = Machine(prog).run();
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.outcome, RunOutcome::Completed);

    EXPECT_EQ(cacheStat("misses"), 1u);
    EXPECT_GE(cacheStat("hits"), 1u);
    EXPECT_EQ(globalDecodeCache().size(), 1u);
    EXPECT_GT(globalDecodeCache().bytes(), 0u);
}

TEST(DecodeCache, FusedAndUnfusedStreamsAreDistinctEntries)
{
    FreshCacheGuard guard;
    ProgramPtr prog = pairHeavyProgram();

    MachineOptions fused;
    fused.enableSuperinstructions = true;
    MachineOptions plain;
    plain.enableSuperinstructions = false;

    RunResult a = Machine(prog, fused).run();
    RunResult b = Machine(prog, plain).run();
    EXPECT_TRUE(a == b); // fusion is result-transparent

    // Same program, different fusion flag: two cache entries.
    EXPECT_EQ(cacheStat("misses"), 2u);
    EXPECT_EQ(globalDecodeCache().size(), 2u);
}

TEST(DecodeCache, ScalarKnobFlipsDoNotInvalidate)
{
    FreshCacheGuard guard;
    ProgramPtr prog = pairHeavyProgram();

    // Two overlays with identical (empty) hook tables but different
    // scalar knobs: the knobs are read per-run and do not enter the
    // predecode output, so the second run must hit.
    auto planA = std::make_shared<Instrumentation>();
    auto planB = std::make_shared<Instrumentation>();
    planB->toggleLbrAroundLibraries = true;
    planB->lbrSelectMask = 0x1ff;
    ASSERT_EQ(fingerprintHookTables(*planA),
              fingerprintHookTables(*planB));

    Machine(prog, {}, planA).run();
    Machine(prog, {}, planB).run();
    EXPECT_EQ(cacheStat("misses"), 1u);
    EXPECT_GE(cacheStat("hits"), 1u);
}

TEST(DecodeCache, HookTableChangesInvalidate)
{
    FreshCacheGuard guard;
    ProgramPtr prog = pairHeavyProgram();

    auto bare = std::make_shared<Instrumentation>();
    auto cbi = std::make_shared<Instrumentation>();
    transform::applyCbi(*prog, *cbi, 1.0);
    ASSERT_NE(fingerprintHookTables(*bare),
              fingerprintHookTables(*cbi));

    Machine(prog, {}, bare).run();
    Machine(prog, {}, cbi).run();
    // Different hook side tables → different streams → two misses.
    EXPECT_EQ(cacheStat("misses"), 2u);
    EXPECT_EQ(globalDecodeCache().size(), 2u);
}

// ---- bounds --------------------------------------------------------------

TEST(DecodeCache, ByteBudgetEvictsOldEntries)
{
    // A budget sized to hold only a couple of decoded streams; one
    // shard so the LRU order is global.
    FreshCacheGuard guard(6 * 1024, 1);

    for (int i = 0; i < 8; ++i) {
        ProgramPtr prog =
            pairHeavyProgram("evict" + std::to_string(i), 4 + i);
        RunResult r = Machine(prog).run();
        EXPECT_EQ(r.outcome, RunOutcome::Completed);
    }
    EXPECT_LE(globalDecodeCache().bytes(), 6u * 1024);
    EXPECT_GE(cacheStat("evictions"), 1u);
    EXPECT_LT(globalDecodeCache().size(), 8u);
}

TEST(DecodeCache, OversizeStreamsRunUncached)
{
    // A budget smaller than any decoded stream: every acquire builds
    // and returns an uncached stream, and execution still works.
    FreshCacheGuard guard(64, 1);

    ProgramPtr prog = pairHeavyProgram();
    RunResult a = Machine(prog).run();
    RunResult b = Machine(prog).run();
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.outcome, RunOutcome::Completed);
    EXPECT_EQ(globalDecodeCache().size(), 0u);
    EXPECT_GE(cacheStat("oversize"), 2u);
    EXPECT_EQ(cacheStat("hits"), 0u);
}

// ---- concurrency (the TSan lane's target) --------------------------------

TEST(DecodeCache, ConcurrentCampaignPredecodesExactlyOnce)
{
    FreshCacheGuard guard;
    ProgramPtr prog = racyCounterProgram();

    RunPool pool(4);
    std::uint64_t consumed = pool.runOrdered(
        0, 64,
        [&](std::uint64_t seed) {
            MachineOptions opts;
            opts.sched.preemptSharedProb = 0.5;
            opts.sched.quantum = 5;
            opts.sched.seed = seed + 1;
            return Machine(prog, opts).run();
        },
        [&](std::uint64_t, RunResult &&r) {
            EXPECT_EQ(r.outcome, RunOutcome::Completed);
            return true;
        });
    EXPECT_EQ(consumed, 64u);

    // Every concurrent Machine shared one immutable stream: exactly
    // one build (the first acquire wins; racers block on the shard
    // lock and then hit).
    EXPECT_EQ(cacheStat("misses"), 1u);
    EXPECT_EQ(cacheStat("hits"), 63u);
    EXPECT_EQ(globalDecodeCache().size(), 1u);
}

// ---- fusion transparency under preemption --------------------------------

TEST(DecodeCache, FusedMatchesUnfusedUnderSeededPreemption)
{
    FreshCacheGuard guard;
    ProgramPtr prog = racyCounterProgram();

    // The fused handlers replicate the per-instruction preemption
    // probe and quantum accounting, so for ANY seed and quantum the
    // fused run must be bit-identical to the unfused one — including
    // quantum 1, where every fused pair is split by quantum expiry
    // after its first half.
    for (std::uint32_t quantum : {1u, 3u, 50u}) {
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            MachineOptions opts;
            opts.sched.preemptSharedProb = 0.5;
            opts.sched.quantum = quantum;
            opts.sched.seed = seed;

            MachineOptions fused = opts;
            fused.enableSuperinstructions = true;
            MachineOptions plain = opts;
            plain.enableSuperinstructions = false;

            RunResult a = Machine(prog, fused).run();
            RunResult b = Machine(prog, plain).run();
            EXPECT_TRUE(a == b)
                << "fused/unfused divergence at quantum=" << quantum
                << " seed=" << seed;
        }
    }
}

TEST(DecodeCache, DispatchModesShareCacheEntries)
{
    FreshCacheGuard guard;
    ProgramPtr prog = pairHeavyProgram();

    // The dispatch mode is not part of the cache key: a stream built
    // under threaded dispatch is served, unchanged, to a switch-mode
    // run (both interpret the same DecodedOp records).
    MachineOptions threaded;
    threaded.dispatch = DispatchMode::Threaded;
    MachineOptions fallback;
    fallback.dispatch = DispatchMode::Switch;

    RunResult a = Machine(prog, threaded).run();
    RunResult b = Machine(prog, fallback).run();
    EXPECT_TRUE(a == b);
    EXPECT_EQ(cacheStat("misses"), 1u);
    EXPECT_GE(cacheStat("hits"), 1u);
}

} // namespace
} // namespace stm
