/**
 * @file
 * Unit tests for the diagnosis core: event keys, the statistical
 * ranker of Section 5.2 (precision / recall / harmonic mean, absence
 * predicates, competition ranking), LBRLOG/LCRLOG, LBRA/LCRA, and
 * the patch-distance metric.
 */

#include <gtest/gtest.h>

#include "corpus/registry.hh"
#include "diag/auto_diag.hh"
#include "diag/event_key.hh"
#include "diag/log_enhance.hh"
#include "diag/ranker.hh"
#include "diag/report.hh"

namespace stm
{
namespace
{

// ---- EventKey -----------------------------------------------------------

TEST(EventKey, FactoriesDistinguishTypes)
{
    EventKey b = EventKey::sourceBranch(3, true);
    EventKey r = EventKey::rawBranch(0x500000);
    EventKey c =
        EventKey::coherence(0x400100, MesiState::Invalid, false);
    EXPECT_NE(b, r);
    EXPECT_NE(b, c);
    EXPECT_NE(r, c);
    EXPECT_EQ(b, EventKey::sourceBranch(3, true));
    EXPECT_NE(b, EventKey::sourceBranch(3, false));
}

TEST(EventKey, CoherencePacksStateAndAccessType)
{
    EventKey loadI =
        EventKey::coherence(1, MesiState::Invalid, false);
    EventKey storeI =
        EventKey::coherence(1, MesiState::Invalid, true);
    EventKey loadE =
        EventKey::coherence(1, MesiState::Exclusive, false);
    EXPECT_NE(loadI, storeI);
    EXPECT_NE(loadI, loadE);
}

TEST(EventKey, LbrRecordsMapToSourceBranchOrRawIp)
{
    BranchRecord mapped;
    mapped.srcBranch = 7;
    mapped.outcome = true;
    EXPECT_EQ(eventOfBranchRecord(mapped),
              EventKey::sourceBranch(7, true));

    BranchRecord raw;
    raw.fromIp = 0x500123;
    raw.srcBranch = kNoSourceBranch;
    EXPECT_EQ(eventOfBranchRecord(raw),
              EventKey::rawBranch(0x500123));
}

TEST(EventKey, EventSetsDeduplicate)
{
    std::vector<BranchRecord> records(5);
    for (auto &r : records) {
        r.srcBranch = 1;
        r.outcome = false;
    }
    EXPECT_EQ(eventsOfLbr(records).size(), 1u);
}

// ---- StatisticalRanker -----------------------------------------------------

TEST(Ranker, PerfectPredictorScoresOne)
{
    StatisticalRanker ranker;
    EventKey e = EventKey::sourceBranch(0, true);
    EventKey noise = EventKey::sourceBranch(1, true);
    for (int i = 0; i < 10; ++i)
        ranker.addFailureProfile({e, noise});
    for (int i = 0; i < 10; ++i)
        ranker.addSuccessProfile({noise});
    auto ranking = ranker.rank();
    ASSERT_FALSE(ranking.empty());
    EXPECT_EQ(ranking[0].event, e);
    EXPECT_DOUBLE_EQ(ranking[0].precision, 1.0);
    EXPECT_DOUBLE_EQ(ranking[0].recall, 1.0);
    EXPECT_DOUBLE_EQ(ranking[0].score, 1.0);
    EXPECT_EQ(StatisticalRanker::positionOf(ranking, e), 1u);
}

TEST(Ranker, HarmonicMeanFormula)
{
    // e in 5/10 failures and 0 successes: P=1, R=0.5, F1=2/3.
    StatisticalRanker ranker;
    EventKey e = EventKey::sourceBranch(0, true);
    for (int i = 0; i < 5; ++i)
        ranker.addFailureProfile({e});
    for (int i = 0; i < 5; ++i)
        ranker.addFailureProfile({});
    for (int i = 0; i < 10; ++i)
        ranker.addSuccessProfile({});
    auto ranking = ranker.rank();
    ASSERT_EQ(ranking.size(), 1u);
    EXPECT_DOUBLE_EQ(ranking[0].precision, 1.0);
    EXPECT_DOUBLE_EQ(ranking[0].recall, 0.5);
    EXPECT_NEAR(ranking[0].score, 2.0 / 3.0, 1e-12);
}

TEST(Ranker, PrecisionPenalizesSuccessOccurrences)
{
    // e in all 10 failures and all 10 successes: P=0.5, R=1.
    StatisticalRanker ranker;
    EventKey e = EventKey::sourceBranch(0, true);
    for (int i = 0; i < 10; ++i)
        ranker.addFailureProfile({e});
    for (int i = 0; i < 10; ++i)
        ranker.addSuccessProfile({e});
    auto ranking = ranker.rank();
    EXPECT_DOUBLE_EQ(ranking[0].precision, 0.5);
    EXPECT_DOUBLE_EQ(ranking[0].recall, 1.0);
    EXPECT_NEAR(ranking[0].score, 2.0 / 3.0, 1e-12);
}

TEST(Ranker, BestPredictorWins)
{
    StatisticalRanker ranker;
    EventKey good = EventKey::sourceBranch(0, true);
    EventKey meh = EventKey::sourceBranch(1, true);
    for (int i = 0; i < 10; ++i)
        ranker.addFailureProfile({good, meh});
    for (int i = 0; i < 10; ++i)
        ranker.addSuccessProfile(i < 5 ? std::set<EventKey>{meh}
                                       : std::set<EventKey>{});
    auto ranking = ranker.rank();
    EXPECT_EQ(ranking[0].event, good);
    EXPECT_GT(ranking[0].score, ranking[1].score);
}

TEST(Ranker, AbsencePredicates)
{
    // e appears in every success and never in failures: the absence
    // of e predicts failure perfectly (Section 4.2.2's Conf1 case).
    StatisticalRanker ranker;
    EventKey e = EventKey::coherence(1, MesiState::Shared, false);
    for (int i = 0; i < 10; ++i)
        ranker.addFailureProfile({});
    for (int i = 0; i < 10; ++i)
        ranker.addSuccessProfile({e});
    auto ranking = ranker.rank(/*include_absence=*/true);
    ASSERT_EQ(ranking.size(), 2u);
    EXPECT_TRUE(ranking[0].absence);
    EXPECT_DOUBLE_EQ(ranking[0].score, 1.0);
    EXPECT_EQ(
        StatisticalRanker::positionOf(ranking, e, /*absence=*/true),
        1u);
    EXPECT_GT(
        StatisticalRanker::positionOf(ranking, e, /*absence=*/false),
        1u);
}

TEST(Ranker, CompetitionRankingSharesTies)
{
    StatisticalRanker ranker;
    EventKey a = EventKey::sourceBranch(0, true);
    EventKey b = EventKey::sourceBranch(1, true);
    EventKey c = EventKey::sourceBranch(2, true);
    for (int i = 0; i < 4; ++i)
        ranker.addFailureProfile({a, b, c});
    for (int i = 0; i < 4; ++i)
        ranker.addSuccessProfile({c});
    auto ranking = ranker.rank();
    // a and b are perfectly correlated: both rank 1.
    EXPECT_EQ(StatisticalRanker::positionOf(ranking, a), 1u);
    EXPECT_EQ(StatisticalRanker::positionOf(ranking, b), 1u);
    EXPECT_EQ(StatisticalRanker::positionOf(ranking, c), 3u);
}

TEST(Ranker, UnknownEventHasPositionZero)
{
    StatisticalRanker ranker;
    ranker.addFailureProfile({EventKey::sourceBranch(0, true)});
    auto ranking = ranker.rank();
    EXPECT_EQ(StatisticalRanker::positionOf(
                  ranking, EventKey::sourceBranch(9, true)),
              0u);
}

// ---- patch distance --------------------------------------------------------

TEST(Report, PatchDistanceWithinFile)
{
    EXPECT_EQ(patchDistance(SourceLoc{0, 93}, SourceLoc{0, 97}), 4);
    EXPECT_EQ(patchDistance(SourceLoc{0, 97}, SourceLoc{0, 93}), 4);
    EXPECT_EQ(patchDistance(SourceLoc{0, 5}, SourceLoc{0, 5}), 0);
}

TEST(Report, PatchDistanceAcrossFilesIsInfinite)
{
    EXPECT_EQ(patchDistance(SourceLoc{0, 1}, SourceLoc{1, 1}), -1);
    EXPECT_EQ(patchDistanceString(-1), "inf");
    EXPECT_EQ(patchDistanceString(12), "12");
}

// ---- LBRLOG / LBRA on the flagship bugs ------------------------------------

TEST(LbrLog, CapturesSortRootCauseBranch)
{
    BugSpec bug = corpus::bugById("sort");
    LbrLogReport report = runLbrLog(bug.program, bug.failing);
    ASSERT_TRUE(report.failed);
    EXPECT_EQ(report.run.outcome, RunOutcome::SegFault);
    std::size_t pos =
        report.positionOfBranch(bug.truth.rootCauseBranch);
    EXPECT_GE(pos, 1u);
    EXPECT_LE(pos, 8u);
}

TEST(LbrLog, SmallerLbrMayMissDeepRootCauses)
{
    BugSpec bug = corpus::bugById("ln"); // root needs > 16 entries
    LogEnhanceOptions opts;
    opts.lbrEntries = 4;
    LbrLogReport report = runLbrLog(bug.program, bug.failing, opts);
    ASSERT_TRUE(report.failed);
    EXPECT_EQ(report.positionOfBranch(bug.truth.relatedBranch), 0u);
}

TEST(Lbra, RanksSortRootCauseFirst)
{
    BugSpec bug = corpus::bugById("sort");
    AutoDiagResult result =
        runLbra(bug.program, bug.failing, bug.succeeding);
    ASSERT_TRUE(result.diagnosed);
    EXPECT_EQ(result.positionOf(EventKey::sourceBranch(
                  bug.truth.rootCauseBranch,
                  bug.truth.rootCauseOutcome)),
              1u);
    EXPECT_EQ(result.failureRunsUsed, 10u);
    EXPECT_EQ(result.successRunsUsed, 10u);
}

TEST(Lbra, ProactiveSchemeAlsoDiagnosesLoggedFailures)
{
    BugSpec bug = corpus::bugById("rm"); // error-message symptom
    AutoDiagOptions opts;
    opts.scheme = transform::SuccessSiteScheme::Proactive;
    AutoDiagResult result =
        runLbra(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(result.diagnosed);
    EXPECT_EQ(result.positionOf(EventKey::sourceBranch(
                  bug.truth.rootCauseBranch,
                  bug.truth.rootCauseOutcome)),
              1u);
}

TEST(Lbra, FewerProfilesStillDiagnoseCleanBugs)
{
    BugSpec bug = corpus::bugById("rm");
    AutoDiagOptions opts;
    opts.failureProfiles = 2;
    opts.successProfiles = 2;
    AutoDiagResult result =
        runLbra(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(result.diagnosed);
    EXPECT_EQ(result.positionOf(EventKey::sourceBranch(
                  bug.truth.rootCauseBranch,
                  bug.truth.rootCauseOutcome)),
              1u);
}

// ---- LCRLOG / LCRA on the flagship concurrency bug --------------------------

TEST(LcrLog, CapturesMozillaJs3Fpe)
{
    BugSpec bug = corpus::bugById("mozilla-js3");
    LcrLogReport report = runLcrLog(bug.program, bug.failing);
    ASSERT_TRUE(report.failed);
    std::size_t pos = report.positionOfEvent(
        bug.truth.fpeInstr, bug.truth.fpeState, bug.truth.fpeStore);
    EXPECT_GE(pos, 1u);
    EXPECT_LE(pos, 16u);
    // The failure thread is where the invalid read happened.
    EXPECT_EQ(report.failureThread, 0u);
}

TEST(LcrLog, Conf1IsMoreSpaceSavingThanConf2)
{
    BugSpec bug = corpus::bugById("mozilla-js3");
    LogEnhanceOptions conf1;
    conf1.lcrConfig = lcrConfSpaceSaving();
    LcrLogReport r1 = runLcrLog(bug.program, bug.failing, conf1);
    LogEnhanceOptions conf2;
    conf2.lcrConfig = lcrConfSpaceConsuming();
    LcrLogReport r2 = runLcrLog(bug.program, bug.failing, conf2);
    ASSERT_TRUE(r1.failed);
    ASSERT_TRUE(r2.failed);
    std::size_t p1 = r1.positionOfEvent(bug.truth.conf1Instr,
                                        bug.truth.conf1State,
                                        bug.truth.conf1Store);
    std::size_t p2 = r2.positionOfEvent(
        bug.truth.fpeInstr, bug.truth.fpeState, bug.truth.fpeStore);
    ASSERT_GE(p1, 1u);
    ASSERT_GE(p2, 1u);
    EXPECT_LT(p1, p2);
}

TEST(Lcra, RanksMozillaJs3FpeFirst)
{
    BugSpec bug = corpus::bugById("mozilla-js3");
    AutoDiagOptions opts;
    opts.absencePredicates = true;
    AutoDiagResult result =
        runLcra(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(result.diagnosed);
    EventKey fpe = EventKey::coherence(
        layout::codeAddr(bug.truth.fpeInstr), bug.truth.fpeState,
        bug.truth.fpeStore);
    EXPECT_EQ(result.positionOf(fpe), 1u);
}

TEST(Lcra, SilentCorruptionIsNotDiagnosed)
{
    BugSpec bug = corpus::bugById("mozilla-js2");
    AutoDiagOptions opts;
    opts.maxAttempts = 2000;
    AutoDiagResult result =
        runLcra(bug.program, bug.failing, bug.succeeding, opts);
    EXPECT_FALSE(result.diagnosed);
}

TEST(Lcra, WrongOutputBugDiagnosedViaCheckpoint)
{
    BugSpec bug = corpus::bugById("mysql2");
    AutoDiagOptions opts;
    opts.absencePredicates = true;
    AutoDiagResult result =
        runLcra(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(result.diagnosed);
    EventKey fpe = EventKey::coherence(
        layout::codeAddr(bug.truth.fpeInstr), bug.truth.fpeState,
        bug.truth.fpeStore);
    EXPECT_EQ(result.positionOf(fpe), 1u);
}

TEST(Diag, ReportsRenderWithoutCrashing)
{
    BugSpec bug = corpus::bugById("sort");
    LbrLogReport log = runLbrLog(bug.program, bug.failing);
    std::ostringstream os;
    printLbrLogReport(os, *bug.program, log);
    EXPECT_NE(os.str().find("LBRLOG"), std::string::npos);
    EXPECT_NE(os.str().find("sort.c"), std::string::npos);

    AutoDiagResult lbra =
        runLbra(bug.program, bug.failing, bug.succeeding);
    std::ostringstream os2;
    printRanking(os2, *bug.program, lbra);
    EXPECT_NE(os2.str().find("#1"), std::string::npos);
}

} // namespace
} // namespace stm
