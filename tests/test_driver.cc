/**
 * @file
 * Unit tests for the simulated kernel driver (Figure 7): the ioctl
 * interface, LBR/LCR enable/disable/profile semantics, the exact
 * pollution model of Section 4.3, and the toggling wrappers.
 */

#include <gtest/gtest.h>

#include "driver/kernel_driver.hh"
#include "program/builder.hh"
#include "program/transform.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

/**
 * A program that drives the Figure 7 interface explicitly: reset,
 * configure, enable, do branchy work, disable, profile.
 */
ProgramPtr
figure7Program(std::uint64_t select_mask)
{
    ProgramBuilder b("fig7");
    b.global("mask", 1,
             {static_cast<Word>(select_mask)});
    b.func("main");
    b.loadg(r1, "mask");
    b.syscall(SyscallNo::CleanLbr);
    b.syscall(SyscallNo::ConfigLbr, r1);
    b.syscall(SyscallNo::EnableLbr);
    // Three conditional-branch retirements (plus their fall-through
    // jumps).
    b.movi(r2, 0);
    b.movi(r3, 3);
    b.beginWhile(Cond::Lt, r2, r3);
    b.addi(r2, r2, 1);
    b.endWhile();
    b.syscall(SyscallNo::DisableLbr);
    b.movi(r4, 0); // profile site id 0
    b.syscall(SyscallNo::ProfileLbr, r4);
    b.halt();
    return b.build();
}

TEST(Driver, Figure7InterfaceProducesAProfile)
{
    RunResult result = Machine(figure7Program(0)).run();
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    ASSERT_EQ(result.profiles.size(), 1u);
    const ProfileRecord &p = result.profiles[0];
    EXPECT_EQ(p.kind, ProfileKind::Lbr);
    EXPECT_FALSE(p.lbr.empty());
}

TEST(Driver, UnfilteredProfileSeesKernelAndFarBranches)
{
    RunResult result = Machine(figure7Program(0)).run();
    bool far = false, kernel = false;
    for (const auto &rec : result.profiles[0].lbr) {
        far = far || rec.kind == BranchKind::FarBranch;
        kernel = kernel || rec.kernel;
    }
    EXPECT_TRUE(far);    // the syscall instructions themselves
    EXPECT_TRUE(kernel); // the driver's ring-0 branches
}

TEST(Driver, PaperMaskHidesDriverActivity)
{
    RunResult result =
        Machine(figure7Program(msr::kPaperLbrSelect)).run();
    ASSERT_FALSE(result.profiles.empty());
    for (const auto &rec : result.profiles[0].lbr) {
        EXPECT_FALSE(rec.kernel);
        EXPECT_TRUE(rec.kind == BranchKind::Conditional ||
                    rec.kind == BranchKind::NearRelativeJump)
            << branchKindName(rec.kind);
    }
    // The three loop iterations are all there.
    int conditionals = 0;
    for (const auto &rec : result.profiles[0].lbr) {
        if (rec.kind == BranchKind::Conditional)
            ++conditionals;
    }
    EXPECT_EQ(conditionals, 3);
}

TEST(Driver, ProfileChargesInstrumentationNotBaseline)
{
    ProgramPtr prog = figure7Program(msr::kPaperLbrSelect);
    RunResult result = Machine(prog).run();
    EXPECT_GT(result.stats.instrumentationInstructions, 0u);
}

// ---- LCR pollution model (Section 4.3) ------------------------------------

/** Program with LCRLOG instrumentation that fails at an error site. */
ProgramPtr
lcrProgram()
{
    ProgramBuilder b("lcr");
    b.global("g", 4, {1, 2, 3, 4});
    b.func("main");
    b.loadg(r1, "g", 0);  // cold: invalid load
    b.loadg(r1, "g", 8);  // same line: exclusive load
    b.logError("fail here");
    b.halt();
    ProgramPtr prog = b.build();
    transform::LcrLogPlan plan;
    plan.lcrConfigMask = lcrConfSpaceConsuming().pack();
    plan.toggling = false;
    transform::applyLcrLog(*prog, plan);
    return prog;
}

TEST(Driver, LcrEnablePollutionIsTwoExclusiveReads)
{
    // At the very start of main, enable injects 2 exclusive reads;
    // under Conf2 both are recorded. They are the oldest entries.
    RunResult result = Machine(lcrProgram()).run();
    ASSERT_FALSE(result.profiles.empty());
    const ProfileRecord &p = result.profiles.back();
    ASSERT_GE(p.lcr.size(), 2u);
    // Oldest two = enable pollution (exclusive loads from driver).
    const LcrRecord &oldest = p.lcr[p.lcr.size() - 1];
    const LcrRecord &second = p.lcr[p.lcr.size() - 2];
    EXPECT_EQ(oldest.observed, MesiState::Exclusive);
    EXPECT_EQ(second.observed, MesiState::Exclusive);
    EXPECT_FALSE(oldest.store);
}

TEST(Driver, LcrDisablePollutionTopsTheProfile)
{
    // The profile ioctl disables LCR first, which injects 2 exclusive
    // reads and 1 shared read; under Conf2 the 2 exclusive reads are
    // the newest records.
    RunResult result = Machine(lcrProgram()).run();
    const ProfileRecord &p = result.profiles.back();
    ASSERT_GE(p.lcr.size(), 3u);
    EXPECT_EQ(p.lcr[0].observed, MesiState::Exclusive);
    EXPECT_EQ(p.lcr[1].observed, MesiState::Exclusive);
    // The application's own events follow.
    EXPECT_EQ(p.lcr[2].observed, MesiState::Exclusive); // g[1]
    EXPECT_EQ(p.lcr[3].observed, MesiState::Invalid);   // g[0] cold
}

TEST(Driver, LcrConf1PollutionIsOneSharedRead)
{
    ProgramBuilder b("lcr1");
    b.global("g", 2, {1, 2});
    b.func("main");
    b.loadg(r1, "g", 0);
    b.logError("fail");
    b.halt();
    ProgramPtr prog = b.build();
    transform::LcrLogPlan plan;
    plan.lcrConfigMask = lcrConfSpaceSaving().pack();
    plan.toggling = false;
    transform::applyLcrLog(*prog, plan);
    RunResult result = Machine(prog).run();
    const ProfileRecord &p = result.profiles.back();
    ASSERT_GE(p.lcr.size(), 2u);
    // Under Conf1 only the shared read of the disable pollution
    // lands on top.
    EXPECT_EQ(p.lcr[0].observed, MesiState::Shared);
    EXPECT_EQ(p.lcr[1].observed, MesiState::Invalid); // g[0] cold
}

TEST(Driver, LbrDisableAddsNoUserBranches)
{
    // "Our LBR-disabling code does not contain any user-level
    // branches": the newest LBR entry at a profile is application
    // code, not driver code.
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 0);
    b.movi(r2, 2);
    b.beginWhile(Cond::Lt, r1, r2);
    b.addi(r1, r1, 1);
    b.endWhile();
    b.logError("fail");
    b.halt();
    ProgramPtr prog = b.build();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    plan.toggling = false;
    transform::applyLbrLog(*prog, plan);
    RunResult result = Machine(prog).run();
    const ProfileRecord &p = result.profiles.back();
    ASSERT_FALSE(p.lbr.empty());
    EXPECT_LT(p.lbr[0].fromIp, layout::kLibraryBase);
}

// ---- toggling ---------------------------------------------------------------

TEST(Driver, TogglingSuppressesLibraryBranches)
{
    auto makeProgram = [] {
        ProgramBuilder b("tog");
        b.func("main");
        b.movi(r1, 10);
        b.libcall(LibFn::Generic); // 10 internal branches
        b.logError("fail");
        b.halt();
        return b.build();
    };

    ProgramPtr withTog = makeProgram();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    plan.toggling = true;
    transform::applyLbrLog(*withTog, plan);
    RunResult togResult = Machine(withTog).run();

    ProgramPtr without = makeProgram();
    plan.toggling = false;
    transform::applyLbrLog(*without, plan);
    RunResult rawResult = Machine(without).run();

    auto libraryRecords = [](const RunResult &r) {
        int n = 0;
        for (const auto &rec : r.profiles.back().lbr) {
            if (rec.fromIp >= layout::kLibraryBase &&
                rec.fromIp < layout::kGlobalBase) {
                ++n;
            }
        }
        return n;
    };
    EXPECT_EQ(libraryRecords(togResult), 0);
    EXPECT_EQ(libraryRecords(rawResult), 10);
}

TEST(Driver, TogglingCostIsInstrumentation)
{
    auto makeProgram = [] {
        ProgramBuilder b("tog");
        b.func("main");
        for (int i = 0; i < 5; ++i) {
            b.movi(r1, 1);
            b.libcall(LibFn::Generic);
        }
        b.halt();
        return b.build();
    };
    ProgramPtr withTog = makeProgram();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    plan.toggling = true;
    transform::applyLbrLog(*withTog, plan);
    RunResult tog = Machine(withTog).run();

    ProgramPtr without = makeProgram();
    plan.toggling = false;
    transform::applyLbrLog(*without, plan);
    RunResult raw = Machine(without).run();

    EXPECT_GT(tog.stats.steadyOverhead(),
              raw.stats.steadyOverhead());
    // Baseline work is identical: instrumentation is accounted
    // separately from the program's own instructions.
    EXPECT_EQ(tog.stats.userInstructions,
              raw.stats.userInstructions);
}

TEST(Driver, TraditionalLoggingCostOrdering)
{
    // Section 5.3: profile << call stack << core dump.
    ProgramBuilder b("t");
    b.func("main");
    b.syscall(SyscallNo::LogCallStack);
    b.syscall(SyscallNo::DumpCore);
    b.halt();
    RunResult result = Machine(b.build()).run();
    driver::TraditionalLoggingCost cost;
    EXPECT_GE(result.stats.kernelInstructions,
              cost.callStackInstructions +
                  cost.coreDumpInstructions);
    EXPECT_GT(cost.coreDumpInstructions,
              100 * cost.callStackInstructions);
}

} // namespace
} // namespace stm
