/**
 * @file
 * Tests for the RunPool execution engine: ordered result delivery,
 * bit-identical behavior across worker counts, quota cancellation,
 * and the end-to-end determinism contract of the diagnosis pipelines
 * (LBRA/LCRA/CBI produce identical rankings and attempt counts with
 * jobs=1 and jobs=8).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "baseline/cbi.hh"
#include "corpus/registry.hh"
#include "diag/auto_diag.hh"
#include "exec/run_pool.hh"

namespace stm
{
namespace
{

/**
 * A synthetic runner whose result encodes its index and whose
 * duration varies pseudo-randomly, so that with many workers results
 * complete out of index order and the pool has to reorder them.
 */
RunResult
syntheticRun(std::uint64_t i)
{
    std::this_thread::sleep_for(
        std::chrono::microseconds((i * 7919) % 7 * 40));
    RunResult r;
    r.output.push_back(static_cast<Word>(i * 3 + 1));
    return r;
}

// ---- RunPool ------------------------------------------------------------

TEST(RunPool, BatchResultsAreIndexOrdered)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        RunPool pool(jobs);
        EXPECT_EQ(pool.jobs(), jobs);
        std::vector<RunResult> results =
            pool.runBatch(10, 50, syntheticRun);
        ASSERT_EQ(results.size(), 50u);
        for (std::uint64_t k = 0; k < 50; ++k) {
            ASSERT_EQ(results[k].output.size(), 1u);
            EXPECT_EQ(results[k].output[0],
                      static_cast<Word>((10 + k) * 3 + 1));
        }
    }
}

TEST(RunPool, ConsumerSeesStrictIndexOrder)
{
    RunPool pool(8);
    std::vector<std::uint64_t> seen;
    std::uint64_t consumed = pool.runOrdered(
        0, 100, syntheticRun, [&](std::uint64_t i, RunResult &&r) {
            EXPECT_EQ(r.output[0], static_cast<Word>(i * 3 + 1));
            seen.push_back(i);
            return true;
        });
    EXPECT_EQ(consumed, 100u);
    ASSERT_EQ(seen.size(), 100u);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(seen[k], k);
}

TEST(RunPool, DeterministicAcrossWorkerCounts)
{
    auto collect = [&](unsigned jobs) {
        RunPool pool(jobs);
        std::vector<Word> values;
        pool.runOrdered(0, 64, syntheticRun,
                        [&](std::uint64_t, RunResult &&r) {
                            values.push_back(r.output[0]);
                            // A data-dependent early stop: exercise
                            // cancellation the same way at any width.
                            return values.size() < 40;
                        });
        return values;
    };
    std::vector<Word> serial = collect(1);
    EXPECT_EQ(collect(2), serial);
    EXPECT_EQ(collect(8), serial);
}

TEST(RunPool, QuotaCancellationStopsEarly)
{
    RunPool pool(8);
    std::atomic<std::uint64_t> launched{0};
    std::uint64_t consumed = pool.runOrdered(
        0, 100000,
        [&](std::uint64_t i) {
            ++launched;
            return syntheticRun(i);
        },
        [&](std::uint64_t i, RunResult &&) { return i < 9; });
    // Attempts 0..9 consumed the quota; attempt 9's refusal stops
    // the batch (it is offered but not consumed).
    EXPECT_EQ(consumed, 9u);
    // Speculation is bounded by the look-ahead window, not the full
    // 100000-run budget.
    EXPECT_LE(launched.load(), 9u + 4u * 8u + 8u);
}

TEST(RunPool, PoolIsReusableAfterCancellation)
{
    RunPool pool(4);
    pool.runOrdered(0, 1000, syntheticRun,
                    [&](std::uint64_t i, RunResult &&) {
                        return i < 3;
                    });
    std::vector<RunResult> results = pool.runBatch(0, 20, syntheticRun);
    ASSERT_EQ(results.size(), 20u);
    for (std::uint64_t k = 0; k < 20; ++k)
        EXPECT_EQ(results[k].output[0], static_cast<Word>(k * 3 + 1));
}

TEST(RunPool, ZeroRunsIsANoOp)
{
    RunPool pool(4);
    bool called = false;
    std::uint64_t consumed = pool.runOrdered(
        0, 0, syntheticRun, [&](std::uint64_t, RunResult &&) {
            called = true;
            return true;
        });
    EXPECT_EQ(consumed, 0u);
    EXPECT_FALSE(called);
}

TEST(RunPool, JobsResolution)
{
    setDefaultJobs(5);
    EXPECT_EQ(defaultJobs(), 5u);
    EXPECT_EQ(RunPool(0).jobs(), 5u);
    EXPECT_EQ(RunPool(3).jobs(), 3u);
    setDefaultJobs(0); // clear the override
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(RunPool, ThroughputStatsAccumulate)
{
    resetExecStats();
    RunPool pool(2);
    pool.runBatch(0, 32, syntheticRun);
    EXPECT_EQ(execStats().value("runs"), 32u);
    EXPECT_EQ(execStats().value("batches"), 1u);
    EXPECT_GT(execRunsPerSecond(), 0.0);
    EXPECT_GE(execUtilization(), 0.0);
    EXPECT_LE(execUtilization(), 1.0);
}

// ---- End-to-end determinism of the diagnosis pipelines ------------------

void
expectSameRanking(const std::vector<RankedEvent> &a,
                  const std::vector<RankedEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a[k].event, b[k].event) << "rank " << k;
        EXPECT_EQ(a[k].absence, b[k].absence) << "rank " << k;
        EXPECT_EQ(a[k].failureRuns, b[k].failureRuns) << "rank " << k;
        EXPECT_EQ(a[k].successRuns, b[k].successRuns) << "rank " << k;
        EXPECT_EQ(a[k].precision, b[k].precision) << "rank " << k;
        EXPECT_EQ(a[k].recall, b[k].recall) << "rank " << k;
        EXPECT_EQ(a[k].score, b[k].score) << "rank " << k;
    }
}

void
expectSameDiag(const AutoDiagResult &a, const AutoDiagResult &b)
{
    EXPECT_EQ(a.diagnosed, b.diagnosed);
    EXPECT_EQ(a.site, b.site);
    EXPECT_EQ(a.failureRunsUsed, b.failureRunsUsed);
    EXPECT_EQ(a.failureAttempts, b.failureAttempts);
    EXPECT_EQ(a.successRunsUsed, b.successRunsUsed);
    EXPECT_EQ(a.successAttempts, b.successAttempts);
    expectSameRanking(a.ranking, b.ranking);
}

TEST(ExecDeterminism, LbraIdenticalAtOneAndEightJobs)
{
    for (const char *id : {"sort", "rm"}) {
        BugSpec bug = corpus::bugById(id);
        AutoDiagOptions opts;
        opts.jobs = 1;
        AutoDiagResult serial =
            runLbra(bug.program, bug.failing, bug.succeeding, opts);
        opts.jobs = 8;
        AutoDiagResult parallel =
            runLbra(bug.program, bug.failing, bug.succeeding, opts);
        ASSERT_TRUE(serial.diagnosed) << id;
        expectSameDiag(serial, parallel);
    }
}

TEST(ExecDeterminism, LbraProactiveIdenticalAtOneAndEightJobs)
{
    BugSpec bug = corpus::bugById("rm");
    AutoDiagOptions opts;
    opts.scheme = transform::SuccessSiteScheme::Proactive;
    opts.jobs = 1;
    AutoDiagResult serial =
        runLbra(bug.program, bug.failing, bug.succeeding, opts);
    opts.jobs = 8;
    AutoDiagResult parallel =
        runLbra(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(serial.diagnosed);
    expectSameDiag(serial, parallel);
}

TEST(ExecDeterminism, LcraIdenticalAtOneAndEightJobs)
{
    BugSpec bug = corpus::bugById("mozilla-js3");
    AutoDiagOptions opts;
    opts.absencePredicates = true;
    opts.jobs = 1;
    AutoDiagResult serial =
        runLcra(bug.program, bug.failing, bug.succeeding, opts);
    opts.jobs = 8;
    AutoDiagResult parallel =
        runLcra(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(serial.diagnosed);
    expectSameDiag(serial, parallel);
}

TEST(ExecDeterminism, CbiIdenticalAtOneAndEightJobs)
{
    BugSpec bug = corpus::bugById("cp");
    CbiOptions opts;
    opts.failureRuns = 60;
    opts.successRuns = 60;
    opts.jobs = 1;
    CbiResult serial =
        runCbi(bug.program, bug.failing, bug.succeeding, opts);
    opts.jobs = 8;
    CbiResult parallel =
        runCbi(bug.program, bug.failing, bug.succeeding, opts);

    EXPECT_EQ(serial.completed, parallel.completed);
    EXPECT_EQ(serial.failureRunsUsed, parallel.failureRunsUsed);
    EXPECT_EQ(serial.successRunsUsed, parallel.successRunsUsed);
    EXPECT_EQ(serial.failureAttempts, parallel.failureAttempts);
    ASSERT_EQ(serial.ranking.size(), parallel.ranking.size());
    for (std::size_t k = 0; k < serial.ranking.size(); ++k) {
        const CbiPredicateScore &x = serial.ranking[k];
        const CbiPredicateScore &y = parallel.ranking[k];
        EXPECT_EQ(x.branch, y.branch) << "rank " << k;
        EXPECT_EQ(x.outcome, y.outcome) << "rank " << k;
        EXPECT_EQ(x.tally.trueInFailing, y.tally.trueInFailing);
        EXPECT_EQ(x.tally.trueInSucceeding, y.tally.trueInSucceeding);
        EXPECT_EQ(x.tally.obsInFailing, y.tally.obsInFailing);
        EXPECT_EQ(x.tally.obsInSucceeding, y.tally.obsInSucceeding);
        EXPECT_EQ(x.score.importance, y.score.importance);
    }
}

} // namespace
} // namespace stm
