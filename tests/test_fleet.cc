/**
 * @file
 * Tests for the fleet collection subsystem (src/fleet): wire-format
 * round-trip and hostile-byte rejection, collector sharding /
 * deduplication / backpressure under concurrent producers, and the
 * batch-vs-incremental ranking equivalence across the whole corpus
 * for shuffled ingest orders and varying shard counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "corpus/registry.hh"
#include "diag/auto_diag.hh"
#include "diag/ranker.hh"
#include "fleet/collector.hh"
#include "fleet/fleet_sim.hh"
#include "fleet/incremental_ranker.hh"
#include "fleet/wire_format.hh"
#include "isa/types.hh"
#include "support/random.hh"
#include "test_util.hh"

namespace stm
{
namespace
{

using fleet::Collector;
using fleet::CollectorOptions;
using fleet::IncrementalRanker;
using fleet::IngestStatus;
using fleet::OverflowPolicy;
using fleet::RunProfile;
using fleet::WireStatus;

// ---- helpers ------------------------------------------------------------

/** A deterministic pseudo-random RunProfile. */
RunProfile
randomProfile(Pcg32 &rng)
{
    RunProfile p;
    p.machineId = rng.next();
    p.runSeed = (static_cast<std::uint64_t>(rng.next()) << 32) |
                rng.next();
    p.bugId = "bug-" + std::to_string(rng.nextBounded(1000));
    p.failure = rng.nextBool(0.5);
    p.kind = rng.nextBool(0.5) ? ProfileKind::Lbr : ProfileKind::Lcr;
    p.site = rng.nextBounded(100);
    p.thread = rng.nextBounded(8);
    p.step = rng.next();

    std::uint32_t nLbr =
        p.kind == ProfileKind::Lbr ? rng.nextBounded(17) : 0;
    for (std::uint32_t i = 0; i < nLbr; ++i) {
        BranchRecord b;
        b.fromIp = layout::codeAddr(rng.nextBounded(500));
        b.toIp = layout::codeAddr(rng.nextBounded(500));
        b.kind = static_cast<BranchKind>(1 + rng.nextBounded(7));
        b.kernel = rng.nextBool(0.1);
        b.srcBranch = rng.nextBool(0.8) ? rng.nextBounded(64)
                                        : kNoSourceBranch;
        b.outcome = rng.nextBool(0.5);
        p.lbr.push_back(b);
    }
    std::uint32_t nLcr =
        p.kind == ProfileKind::Lcr ? rng.nextBounded(17) : 0;
    for (std::uint32_t i = 0; i < nLcr; ++i) {
        LcrRecord c;
        c.pc = layout::codeAddr(rng.nextBounded(500));
        c.observed = static_cast<MesiState>(rng.nextBounded(4));
        c.store = rng.nextBool(0.5);
        p.lcr.push_back(c);
    }
    return p;
}

// ---- wire format --------------------------------------------------------

TEST(WireFormat, RoundTripsRandomProfiles)
{
    Pcg32 rng(42);
    for (int i = 0; i < 200; ++i) {
        RunProfile p = randomProfile(rng);
        std::vector<std::uint8_t> wire = fleet::serialize(p);
        RunProfile q;
        ASSERT_EQ(fleet::deserialize(wire, &q), WireStatus::Ok)
            << "profile " << i;
        EXPECT_EQ(p, q) << "profile " << i;
    }
}

TEST(WireFormat, RoundTripsEmptyRings)
{
    RunProfile p;
    p.bugId = "empty";
    p.lbr.clear();
    p.lcr.clear();
    std::vector<std::uint8_t> wire = fleet::serialize(p);
    RunProfile q;
    ASSERT_EQ(fleet::deserialize(wire, &q), WireStatus::Ok);
    EXPECT_EQ(p, q);
}

TEST(WireFormat, EveryTruncationFailsCleanly)
{
    Pcg32 rng(7);
    RunProfile p = randomProfile(rng);
    std::vector<std::uint8_t> wire = fleet::serialize(p);
    for (std::size_t len = 0; len < wire.size(); ++len) {
        RunProfile q;
        WireStatus ws = fleet::deserialize(wire.data(), len, &q);
        EXPECT_NE(ws, WireStatus::Ok) << "prefix length " << len;
    }
}

TEST(WireFormat, TrailingBytesAreRejected)
{
    Pcg32 rng(8);
    std::vector<std::uint8_t> wire =
        fleet::serialize(randomProfile(rng));
    wire.push_back(0);
    RunProfile q;
    EXPECT_EQ(fleet::deserialize(wire, &q), WireStatus::Malformed);
}

TEST(WireFormat, EverySingleByteCorruptionIsDetected)
{
    Pcg32 rng(9);
    RunProfile p = randomProfile(rng);
    std::vector<std::uint8_t> wire = fleet::serialize(p);
    for (std::size_t at = 0; at < wire.size(); ++at) {
        for (std::uint8_t bit : {0x01, 0x80}) {
            std::vector<std::uint8_t> bad = wire;
            bad[at] ^= bit;
            RunProfile q;
            WireStatus ws = fleet::deserialize(bad, &q);
            // A flip may land in magic, version, length, CRC, or
            // payload; each is caught by its own check. Nothing may
            // decode successfully.
            EXPECT_NE(ws, WireStatus::Ok)
                << "byte " << at << " bit " << int(bit);
        }
    }
}

TEST(WireFormat, RandomGarbageNeverDecodes)
{
    Pcg32 rng(10);
    for (int i = 0; i < 500; ++i) {
        std::vector<std::uint8_t> junk(rng.nextBounded(200));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.next());
        RunProfile q;
        EXPECT_NE(fleet::deserialize(junk, &q), WireStatus::Ok);
    }
}

TEST(WireFormat, VersionMismatchIsRejectedBeforeCrc)
{
    Pcg32 rng(11);
    std::vector<std::uint8_t> wire =
        fleet::serialize(randomProfile(rng));
    // Bump the version field only: the CRC (which covers the version)
    // is now stale, but the decoder must classify this as a version
    // mismatch, not bit rot — a v2 sender's checksum domain is
    // unknown to a v1 decoder.
    std::vector<std::uint8_t> v2 = wire;
    v2[4] = static_cast<std::uint8_t>(fleet::kWireVersion + 1);
    RunProfile q;
    EXPECT_EQ(fleet::deserialize(v2, &q), WireStatus::BadVersion);
}

TEST(WireFormat, BadMagicRejected)
{
    Pcg32 rng(12);
    std::vector<std::uint8_t> wire =
        fleet::serialize(randomProfile(rng));
    wire[0] ^= 0xFF;
    RunProfile q;
    EXPECT_EQ(fleet::deserialize(wire, &q), WireStatus::BadMagic);
}

TEST(WireFormat, PayloadCorruptionIsBadCrc)
{
    Pcg32 rng(13);
    RunProfile p = randomProfile(rng);
    p.bugId = "corrupt-me";
    std::vector<std::uint8_t> wire = fleet::serialize(p);
    wire[fleet::kWireHeaderSize + 3] ^= 0x10;
    RunProfile q;
    EXPECT_EQ(fleet::deserialize(wire, &q), WireStatus::BadCrc);
}

TEST(WireFormat, FingerprintIsCanonicalAndSensitive)
{
    Pcg32 rng(14);
    RunProfile p = randomProfile(rng);
    RunProfile copy = p;
    EXPECT_EQ(fleet::fingerprint(p), fleet::fingerprint(copy));

    RunProfile differentMachine = p;
    differentMachine.machineId ^= 1;
    EXPECT_NE(fleet::fingerprint(p),
              fleet::fingerprint(differentMachine));

    RunProfile differentLabel = p;
    differentLabel.failure = !differentLabel.failure;
    EXPECT_NE(fleet::fingerprint(p),
              fleet::fingerprint(differentLabel));
}

// ---- zero-copy frame views ----------------------------------------------

TEST(WireFormat, ViewAliasesTheFrameAndMaterializesEqually)
{
    Pcg32 rng(31);
    for (int i = 0; i < 200; ++i) {
        RunProfile p = randomProfile(rng);
        std::vector<std::uint8_t> wire = fleet::serialize(p);
        fleet::RunProfileView v;
        ASSERT_EQ(
            fleet::decodeFrameView(wire.data(), wire.size(), &v),
            WireStatus::Ok)
            << "profile " << i;
        // Zero copy: the view's payload IS the frame's payload bytes.
        EXPECT_EQ(v.payload(), wire.data() + fleet::kWireHeaderSize);
        EXPECT_EQ(v.payloadSize(),
                  wire.size() - fleet::kWireHeaderSize);
        EXPECT_EQ(v.machineId(), p.machineId);
        EXPECT_EQ(v.runSeed(), p.runSeed);
        EXPECT_EQ(v.bugId(), p.bugId);
        EXPECT_EQ(v.failure(), p.failure);
        EXPECT_EQ(v.kind(), p.kind);
        EXPECT_EQ(v.site(), p.site);
        EXPECT_EQ(v.thread(), p.thread);
        EXPECT_EQ(v.step(), p.step);
        ASSERT_EQ(v.lbrSize(), p.lbr.size());
        for (std::size_t r = 0; r < p.lbr.size(); ++r)
            EXPECT_EQ(v.lbr(r), p.lbr[r]) << "lbr record " << r;
        ASSERT_EQ(v.lcrSize(), p.lcr.size());
        for (std::size_t r = 0; r < p.lcr.size(); ++r)
            EXPECT_EQ(v.lcr(r), p.lcr[r]) << "lcr record " << r;
        EXPECT_EQ(v.materialize(), p);
    }
}

TEST(WireFormat, ViewStatusMatchesDeserializeOnEveryTruncation)
{
    Pcg32 rng(32);
    RunProfile p = randomProfile(rng);
    std::vector<std::uint8_t> wire = fleet::serialize(p);
    for (std::size_t len = 0; len <= wire.size(); ++len) {
        RunProfile q;
        fleet::RunProfileView v;
        // The two decode shapes must agree status-for-status on any
        // prefix, not merely both reject.
        EXPECT_EQ(fleet::decodeFrameView(wire.data(), len, &v),
                  fleet::deserialize(wire.data(), len, &q))
            << "prefix length " << len;
    }
}

TEST(WireFormat, ViewStatusMatchesDeserializeOnEveryByteCorruption)
{
    Pcg32 rng(33);
    RunProfile p = randomProfile(rng);
    std::vector<std::uint8_t> wire = fleet::serialize(p);
    for (std::size_t at = 0; at < wire.size(); ++at) {
        for (std::uint8_t bit : {0x01, 0x80}) {
            std::vector<std::uint8_t> bad = wire;
            bad[at] ^= bit;
            RunProfile q;
            fleet::RunProfileView v;
            WireStatus want =
                fleet::deserialize(bad.data(), bad.size(), &q);
            EXPECT_EQ(
                fleet::decodeFrameView(bad.data(), bad.size(), &v),
                want)
                << "byte " << at << " bit " << int(bit);
        }
    }
    // And on trailing garbage, for completeness of the partition.
    std::vector<std::uint8_t> trailing = wire;
    trailing.push_back(0);
    fleet::RunProfileView v;
    EXPECT_EQ(fleet::decodeFrameView(trailing.data(),
                                     trailing.size(), &v),
              WireStatus::Malformed);
}

TEST(WireFormat, TrustedDecodeSkipsCrcButKeepsBounds)
{
    Pcg32 rng(34);
    RunProfile p = randomProfile(rng);
    p.bugId = "trusted-path";
    std::vector<std::uint8_t> wire = fleet::serialize(p);
    // Flip a bugId byte: structure-neutral, so the trusted decode
    // (re-reading bytes the collector's own ingest already validated)
    // skips the CRC pass and succeeds, while the hostile-input
    // default still catches the rot.
    std::vector<std::uint8_t> bad = wire;
    bad[fleet::kWireHeaderSize + 20] ^= 0x20; // first bugId byte
    fleet::RunProfileView v;
    EXPECT_EQ(fleet::decodeFrameView(bad.data(), bad.size(), &v),
              WireStatus::BadCrc);
    EXPECT_EQ(fleet::decodeFrameView(bad.data(), bad.size(), &v,
                                     /*trusted=*/true),
              WireStatus::Ok);
    // Structural bounds stay enforced even when trusted: a truncated
    // frame can never be misread.
    for (std::size_t len = 0; len < wire.size(); ++len) {
        EXPECT_NE(fleet::decodeFrameView(wire.data(), len, &v,
                                         /*trusted=*/true),
                  WireStatus::Ok)
            << "prefix length " << len;
    }
}

TEST(WireFormat, SerializeIntoMatchesSerialize)
{
    Pcg32 rng(35);
    for (int i = 0; i < 100; ++i) {
        RunProfile p = randomProfile(rng);
        std::vector<std::uint8_t> wire = fleet::serialize(p);
        ASSERT_EQ(fleet::encodedFrameSize(p), wire.size());
        std::vector<std::uint8_t> direct(wire.size(), 0xAA);
        EXPECT_EQ(fleet::serializeInto(p, direct.data()),
                  wire.size());
        EXPECT_EQ(direct, wire) << "profile " << i;
    }
}

TEST(WireFormat, PayloadFingerprintMatchesProfileFingerprint)
{
    // The collector hashes the encoded payload bytes directly (one
    // walk, no re-encode); that must be the canonical fingerprint.
    Pcg32 rng(36);
    for (int i = 0; i < 100; ++i) {
        RunProfile p = randomProfile(rng);
        std::vector<std::uint8_t> wire = fleet::serialize(p);
        EXPECT_EQ(fleet::fingerprintPayload(
                      wire.data() + fleet::kWireHeaderSize,
                      wire.size() - fleet::kWireHeaderSize),
                  fleet::fingerprint(p))
            << "profile " << i;
    }
}

// ---- collector ----------------------------------------------------------

TEST(Collector, AcceptsAndDrainsInArrivalOrderPerShard)
{
    CollectorOptions opts;
    opts.shards = 1;
    Collector collector(opts);
    Pcg32 rng(21);
    std::vector<RunProfile> sent;
    for (int i = 0; i < 10; ++i) {
        RunProfile p = randomProfile(rng);
        EXPECT_EQ(collector.ingest(fleet::serialize(p)),
                  IngestStatus::Accepted);
        sent.push_back(std::move(p));
    }
    std::vector<RunProfile> got = collector.drain();
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i)
        EXPECT_EQ(got[i], sent[i]);
    EXPECT_EQ(collector.stats().value("accepted"), 10u);
    EXPECT_EQ(collector.stats().value("drained"), 10u);
}

TEST(Collector, SuppressesDuplicates)
{
    Collector collector;
    Pcg32 rng(22);
    std::vector<std::uint8_t> wire =
        fleet::serialize(randomProfile(rng));
    EXPECT_EQ(collector.ingest(wire), IngestStatus::Accepted);
    EXPECT_EQ(collector.ingest(wire), IngestStatus::Duplicate);
    // Still a duplicate after the original drained: `seen` is
    // forever, so late retransmissions cannot double-count.
    EXPECT_EQ(collector.drain().size(), 1u);
    EXPECT_EQ(collector.ingest(wire), IngestStatus::Duplicate);
    EXPECT_EQ(collector.stats().value("duplicates"), 2u);
}

TEST(Collector, CountsDecodeErrors)
{
    Collector collector;
    std::vector<std::uint8_t> junk = {1, 2, 3, 4};
    EXPECT_EQ(collector.ingest(junk), IngestStatus::DecodeError);
    EXPECT_EQ(collector.stats().value("decode_errors"), 1u);
    EXPECT_EQ(collector.queued(), 0u);
}

TEST(Collector, DropPolicyShedsWhenFull)
{
    CollectorOptions opts;
    opts.shards = 1;
    opts.shardCapacity = 2;
    opts.overflow = OverflowPolicy::Drop;
    Collector collector(opts);
    Pcg32 rng(23);
    EXPECT_EQ(collector.ingest(
                  fleet::serialize(randomProfile(rng))),
              IngestStatus::Accepted);
    EXPECT_EQ(collector.ingest(
                  fleet::serialize(randomProfile(rng))),
              IngestStatus::Accepted);
    EXPECT_EQ(collector.ingest(
                  fleet::serialize(randomProfile(rng))),
              IngestStatus::Dropped);
    EXPECT_EQ(collector.stats().value("dropped"), 1u);
    EXPECT_EQ(collector.drain().size(), 2u);
    // After the drain there is space again.
    EXPECT_EQ(collector.ingest(
                  fleet::serialize(randomProfile(rng))),
              IngestStatus::Accepted);
}

TEST(Collector, BlockPolicyWaitsForDrain)
{
    CollectorOptions opts;
    opts.shards = 1;
    opts.shardCapacity = 1;
    opts.overflow = OverflowPolicy::Block;
    Collector collector(opts);
    Pcg32 rng(24);
    RunProfile first = randomProfile(rng);
    RunProfile second = randomProfile(rng);
    ASSERT_EQ(collector.ingest(fleet::serialize(first)),
              IngestStatus::Accepted);

    // The producer must block until the consumer drains: the shard
    // stays full until the first drain below, so the second ingest
    // cannot complete before it.
    std::atomic<bool> entered{false};
    std::thread producer([&] {
        entered.store(true);
        EXPECT_EQ(collector.ingest(fleet::serialize(second)),
                  IngestStatus::Accepted);
    });
    while (!entered.load())
        std::this_thread::yield();
    // Let the producer reach the full-shard wait before freeing space
    // (it holds the shard lock from the capacity check to the wait,
    // so draining after this point observes `blocked`).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::size_t drained = 0;
    while (drained < 2) {
        drained += collector.drain().size();
        std::this_thread::yield();
    }
    producer.join();
    EXPECT_EQ(collector.stats().value("accepted"), 2u);
    EXPECT_GE(collector.stats().value("blocked"), 1u);
}

TEST(Collector, CloseWakesBlockedProducers)
{
    CollectorOptions opts;
    opts.shards = 1;
    opts.shardCapacity = 1;
    Collector collector(opts);
    Pcg32 rng(25);
    ASSERT_EQ(collector.ingest(
                  fleet::serialize(randomProfile(rng))),
              IngestStatus::Accepted);
    std::thread producer([&] {
        EXPECT_EQ(collector.ingest(
                      fleet::serialize(randomProfile(rng))),
                  IngestStatus::Closed);
    });
    // Give the producer a chance to park, then close the intake.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    collector.close();
    producer.join();
    // Queued reports survive a close.
    EXPECT_EQ(collector.drain().size(), 1u);
    EXPECT_EQ(collector.ingest(
                  fleet::serialize(randomProfile(rng))),
              IngestStatus::Closed);
}

TEST(Collector, ShardRoutingIsByFingerprint)
{
    CollectorOptions opts;
    opts.shards = 4;
    Collector collector(opts);
    Pcg32 rng(26);
    std::vector<RunProfile> sent;
    for (int i = 0; i < 64; ++i) {
        RunProfile p = randomProfile(rng);
        collector.ingest(fleet::serialize(p));
        sent.push_back(std::move(p));
    }
    std::uint64_t perShard = 0;
    for (unsigned s = 0; s < 4; ++s)
        perShard += collector.shardStats(s).value("accepted");
    EXPECT_EQ(perShard, 64u);
    for (const RunProfile &p : sent) {
        unsigned shard =
            static_cast<unsigned>(fleet::fingerprint(p) % 4);
        EXPECT_GE(collector.shardStats(shard).value("accepted"), 1u);
    }
}

/**
 * Multi-producer stress: many threads ingesting disjoint and
 * overlapping frames concurrently. Run under TSan in CI. The exact
 * interleaving varies; the accounting invariants may not.
 */
TEST(Collector, ConcurrentProducersAccountExactly)
{
    CollectorOptions opts;
    opts.shards = 4;
    opts.shardCapacity = 100000;
    Collector collector(opts);

    constexpr int kProducers = 4;
    constexpr int kPerProducer = 200;
    // Pre-serialize: producer t sends its own 200 frames plus re-sends
    // of producer 0's frames (cross-thread duplicates).
    std::vector<std::vector<std::vector<std::uint8_t>>> frames(
        kProducers);
    for (int t = 0; t < kProducers; ++t) {
        Pcg32 rng(100 + t);
        for (int i = 0; i < kPerProducer; ++i)
            frames[t].push_back(
                fleet::serialize(randomProfile(rng)));
    }

    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
            for (const auto &frame : frames[t])
                collector.ingest(frame);
            for (const auto &frame : frames[0])
                collector.ingest(frame); // contended duplicates
        });
    }
    for (auto &p : producers)
        p.join();

    // 4x200 distinct + 4x200 re-sends of producer 0's frames: every
    // distinct frame accepted exactly once.
    EXPECT_EQ(collector.stats().value("accepted"),
              std::uint64_t{kProducers} * kPerProducer);
    EXPECT_EQ(collector.stats().value("duplicates"),
              std::uint64_t{kProducers} * kPerProducer);
    EXPECT_EQ(collector.drain().size(),
              std::size_t{kProducers} * kPerProducer);
}

// ---- incremental ranker -------------------------------------------------

/** Compare two rankings for exact equality, scores included. */
void
expectSameRanking(const std::vector<RankedEvent> &a,
                  const std::vector<RankedEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].event, b[i].event) << "position " << i;
        EXPECT_EQ(a[i].absence, b[i].absence) << "position " << i;
        EXPECT_EQ(a[i].failureRuns, b[i].failureRuns)
            << "position " << i;
        EXPECT_EQ(a[i].successRuns, b[i].successRuns)
            << "position " << i;
        EXPECT_DOUBLE_EQ(a[i].precision, b[i].precision)
            << "position " << i;
        EXPECT_DOUBLE_EQ(a[i].recall, b[i].recall)
            << "position " << i;
        EXPECT_DOUBLE_EQ(a[i].score, b[i].score)
            << "position " << i;
    }
}

/** Batch-rank the reports with the Section 5.2 StatisticalRanker. */
std::vector<RankedEvent>
batchRank(const std::vector<RunProfile> &reports, bool absence)
{
    StatisticalRanker ranker;
    for (const RunProfile &p : reports) {
        std::set<EventKey> events = p.kind == ProfileKind::Lbr
                                        ? eventsOfLbr(p.lbr)
                                        : eventsOfLcr(p.lcr);
        if (p.failure)
            ranker.addFailureProfile(events);
        else
            ranker.addSuccessProfile(events);
    }
    return ranker.rank(absence);
}

/**
 * Stream the reports through serialize -> collector(shards) ->
 * incremental ranker, in the given order.
 */
std::vector<RankedEvent>
streamRank(const std::vector<RunProfile> &reports, bool absence,
           unsigned shards)
{
    CollectorOptions copts;
    copts.shards = shards;
    copts.shardCapacity = reports.size() + 1;
    Collector collector(copts);
    for (const RunProfile &p : reports)
        EXPECT_EQ(collector.ingest(fleet::serialize(p)),
                  IngestStatus::Accepted);
    IncrementalRanker ranker;
    collector.drainInto(
        [&](RunProfile &&p) { ranker.ingest(p); });
    return ranker.rank(absence);
}

TEST(Collector, SubmitSharesDedupWithTheWirePath)
{
    // submit() (the zero-copy producer path) and ingest() (the wire
    // path) must land in the same fingerprint space: the same report
    // is a duplicate no matter which door it arrives through.
    Collector collector;
    Pcg32 rng(51);
    RunProfile p = randomProfile(rng);
    EXPECT_EQ(collector.submit(p), IngestStatus::Accepted);
    EXPECT_EQ(collector.ingest(fleet::serialize(p)),
              IngestStatus::Duplicate);
    EXPECT_EQ(collector.submit(p), IngestStatus::Duplicate);
    std::vector<RunProfile> out = collector.drain();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], p);
    EXPECT_EQ(collector.stats().value("duplicates"), 2u);
}

TEST(Collector, DrainViewsDecodesEveryFrameInPlace)
{
    CollectorOptions opts;
    opts.shards = 4;
    Collector collector(opts);
    Pcg32 rng(52);
    std::vector<RunProfile> sent;
    for (int i = 0; i < 64; ++i) {
        sent.push_back(randomProfile(rng));
        ASSERT_EQ(collector.submit(sent.back()),
                  IngestStatus::Accepted);
    }
    EXPECT_EQ(collector.queued(), sent.size());
    std::vector<RunProfile> got;
    collector.drainViews([&](const fleet::RunProfileView &v) {
        got.push_back(v.materialize());
    });
    EXPECT_EQ(collector.queued(), 0u);
    ASSERT_EQ(got.size(), sent.size());
    // Shards interleave, so compare as multisets (by fingerprint).
    auto byFingerprint = [](const RunProfile &a, const RunProfile &b) {
        return fleet::fingerprint(a) < fleet::fingerprint(b);
    };
    std::sort(sent.begin(), sent.end(), byFingerprint);
    std::sort(got.begin(), got.end(), byFingerprint);
    EXPECT_EQ(got, sent);
    EXPECT_EQ(collector.stats().value("drained"), sent.size());
}

TEST(Collector, OversizeFramesTakeTheHeapDetour)
{
    // An arena region is at least 4 KiB; a frame bigger than that
    // must fall back to a heap allocation — never trip the overflow
    // policy, never be refused.
    CollectorOptions opts;
    opts.shards = 1;
    opts.arenaBytes = 4096; // region size bottoms out at 4096
    Collector collector(opts);
    Pcg32 rng(53);
    RunProfile big = randomProfile(rng);
    big.kind = ProfileKind::Lbr;
    big.lcr.clear();
    BranchRecord proto;
    proto.fromIp = layout::codeAddr(1);
    proto.toIp = layout::codeAddr(2);
    proto.kind = static_cast<BranchKind>(1);
    proto.kernel = false;
    proto.srcBranch = kNoSourceBranch;
    proto.outcome = true;
    while (fleet::encodedFrameSize(big) <= 4096)
        big.lbr.push_back(proto);
    ASSERT_EQ(collector.submit(big), IngestStatus::Accepted);
    std::vector<RunProfile> out = collector.drain();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], big);
    // An undrained heap frame at destruction must not leak (the
    // ASan lane watches this path).
    RunProfile second = big;
    second.machineId ^= 0x5A5A;
    ASSERT_EQ(collector.submit(second), IngestStatus::Accepted);
}

TEST(Collector, DroppedFingerprintStaysSuppressed)
{
    CollectorOptions opts;
    opts.shards = 1;
    opts.shardCapacity = 1;
    opts.overflow = OverflowPolicy::Drop;
    Collector collector(opts);
    Pcg32 rng(54);
    RunProfile a = randomProfile(rng);
    RunProfile b = randomProfile(rng);
    EXPECT_EQ(collector.submit(a), IngestStatus::Accepted);
    EXPECT_EQ(collector.submit(b), IngestStatus::Dropped);
    EXPECT_EQ(collector.drain().size(), 1u);
    // The dropped report's fingerprint stays in `seen`: a
    // retransmission after a shed is a duplicate, not a second
    // chance — exactly the old queue's accounting.
    EXPECT_EQ(collector.submit(b), IngestStatus::Duplicate);
    EXPECT_EQ(collector.stats().value("dropped"), 1u);
    EXPECT_EQ(collector.stats().value("duplicates"), 1u);
}

TEST(IncrementalRanker, CacheInvalidatesOnIngest)
{
    IncrementalRanker ranker;
    ranker.addFailureEvents(
        std::set<EventKey>{EventKey::sourceBranch(1, true)});
    ranker.addSuccessEvents(
        std::set<EventKey>{EventKey::sourceBranch(2, true)});
    const auto &first = ranker.rank();
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].event, EventKey::sourceBranch(1, true));
    // Same object returned while nothing changed.
    EXPECT_EQ(&ranker.rank(), &first);

    ranker.addFailureEvents(
        std::set<EventKey>{EventKey::sourceBranch(2, true)});
    const auto &second = ranker.rank();
    // Branch 2 now appears in a failure too; recall of branch 1
    // halves and the ordering reflects the new denominators.
    EXPECT_DOUBLE_EQ(second[0].recall, 0.5);
}

/**
 * The tentpole equivalence guarantee, corpus-wide: for every corpus
 * bug, the streaming pipeline (wire -> sharded collector ->
 * IncrementalRanker) produces exactly the batch StatisticalRanker's
 * ranking, for shuffled ingest orders and for 1/2/3/8 shards.
 *
 * Reports are captured from real fleet runs (captureFleetReports);
 * entries whose failures cannot be reproduced within the test budget
 * fall back to synthesized profiles so the algebraic property is
 * still exercised on all 31 entries.
 */
class FleetEquivalence : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FleetEquivalence, IncrementalMatchesBatchForAnyOrderAndSharding)
{
    BugSpec bug = corpus::bugById(GetParam());

    fleet::FleetOptions opts;
    opts.machines = 5;
    opts.failureProfiles = 4;
    opts.successProfiles = 4;
    opts.maxAttempts = 3000;
    opts.jobs = 1;
    std::vector<RunProfile> reports =
        fleet::captureFleetReports(bug, opts).reports;

    if (reports.size() < 4) {
        // Synthesized fallback: seeded per-bug profiles over the
        // bug's own program addresses.
        Pcg32 rng(static_cast<std::uint64_t>(
            std::hash<std::string>{}(bug.id)));
        reports.clear();
        for (int i = 0; i < 12; ++i) {
            RunProfile p = randomProfile(rng);
            p.bugId = bug.id;
            p.failure = i % 2 == 0;
            reports.push_back(std::move(p));
        }
    }

    // Absence predicates on for concurrency entries, as LCRA uses.
    bool absence = bug.isConcurrent;
    std::vector<RankedEvent> expected = batchRank(reports, absence);
    EXPECT_FALSE(expected.empty());

    Pcg32 shuffleRng(0xF1EE7 + reports.size());
    std::vector<RunProfile> shuffled = reports;
    const unsigned shardCounts[] = {1, 2, 3, 8};
    for (int round = 0; round < 4; ++round) {
        // Fisher-Yates with the deterministic PCG stream.
        for (std::size_t i = shuffled.size(); i > 1; --i) {
            std::size_t j = shuffleRng.nextBounded(
                static_cast<std::uint32_t>(i));
            std::swap(shuffled[i - 1], shuffled[j]);
        }
        expectSameRanking(
            streamRank(shuffled, absence, shardCounts[round]),
            expected);
    }
}

std::vector<std::string>
allBugIds()
{
    std::vector<std::string> ids;
    for (const BugSpec &bug : corpus::allBugs())
        ids.push_back(bug.id);
    return ids;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FleetEquivalence, ::testing::ValuesIn(allBugIds()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

/**
 * Randomized differential test: the streaming pipeline must equal the
 * batch ranker under *adversarial* transport — every report sent a
 * random number of times (duplicates), interleaved with corrupted
 * frames, the whole stream shuffled (out-of-order), and the collector
 * drained into the ranker at random points mid-stream (so rescoring
 * interleaves with ingest). The batch reference sees each distinct
 * report exactly once: transport garbage must be invisible.
 */
TEST(IncrementalRanker, DifferentialUnderAdversarialTransport)
{
    Pcg32 rng(test::testSeed(), 53);
    for (int round = 0; round < 5; ++round) {
        // Distinct reports (machineId pins a unique fingerprint).
        std::vector<RunProfile> distinct;
        std::size_t count = 8 + rng.nextBounded(24);
        for (std::size_t i = 0; i < count; ++i) {
            RunProfile p = randomProfile(rng);
            p.machineId = i;
            p.bugId = "adversarial";
            distinct.push_back(std::move(p));
        }

        // The wire stream: 1-3 copies of each frame plus corrupted
        // interlopers, then a Fisher-Yates shuffle.
        std::vector<std::vector<std::uint8_t>> stream;
        std::size_t copies = 0, corrupt = 0;
        for (const RunProfile &p : distinct) {
            std::vector<std::uint8_t> frame = fleet::serialize(p);
            std::uint32_t sends = 1 + rng.nextBounded(3);
            copies += sends;
            for (std::uint32_t s = 0; s < sends; ++s)
                stream.push_back(frame);
            if (rng.nextBool(0.5)) {
                std::vector<std::uint8_t> bad = frame;
                bad[rng.nextBounded(
                    static_cast<std::uint32_t>(bad.size()))] ^= 0x20;
                stream.push_back(std::move(bad));
                ++corrupt;
            }
        }
        for (std::size_t i = stream.size(); i > 1; --i) {
            std::size_t j = rng.nextBounded(
                static_cast<std::uint32_t>(i));
            std::swap(stream[i - 1], stream[j]);
        }

        // Ingest with mid-stream drains and rescores.
        CollectorOptions copts;
        copts.shards = 1 + rng.nextBounded(4);
        copts.shardCapacity = stream.size() + 1;
        Collector collector(copts);
        IncrementalRanker ranker;
        bool absence = round % 2 == 0;
        std::size_t accepted = 0, duplicates = 0, rejected = 0;
        for (const auto &frame : stream) {
            switch (collector.ingest(frame.data(), frame.size())) {
              case IngestStatus::Accepted:
                ++accepted;
                break;
              case IngestStatus::Duplicate:
                ++duplicates;
                break;
              case IngestStatus::DecodeError:
                ++rejected;
                break;
              default:
                FAIL() << "unexpected ingest status";
            }
            if (rng.nextBool(0.1)) {
                collector.drainInto(
                    [&](RunProfile &&p) { ranker.ingest(p); });
                ranker.rank(absence); // interleaved rescore
            }
        }
        collector.drainInto(
            [&](RunProfile &&p) { ranker.ingest(p); });

        EXPECT_EQ(accepted, distinct.size());
        EXPECT_EQ(duplicates, copies - distinct.size());
        // A corrupted frame may coincidentally still parse only if
        // the flipped byte were inside ignored padding — there is
        // none, so every corruption must be rejected.
        EXPECT_EQ(rejected, corrupt);

        expectSameRanking(ranker.rank(absence),
                          batchRank(distinct, absence));
    }
}

// ---- fleet sim ----------------------------------------------------------

TEST(FleetSim, MatchesInProcessAutoDiagRanking)
{
    BugSpec bug = corpus::bugById("cp");

    AutoDiagOptions autoOpts;
    autoOpts.jobs = 1;
    AutoDiagResult inProcess =
        runLbra(bug.program, bug.failing, bug.succeeding, autoOpts);
    ASSERT_TRUE(inProcess.diagnosed);

    fleet::FleetOptions opts;
    opts.machines = 7;
    opts.jobs = 1;
    fleet::FleetResult viaFleet = fleet::runFleetDiagnosis(bug, opts);
    ASSERT_TRUE(viaFleet.diagnosed);

    expectSameRanking(viaFleet.ranking, inProcess.ranking);
    EXPECT_EQ(viaFleet.failureAttempts, inProcess.failureAttempts);
}

TEST(FleetSim, TransportFaultsDoNotChangeTheRanking)
{
    BugSpec bug = corpus::bugById("cp");

    fleet::FleetOptions clean;
    clean.jobs = 1;
    fleet::FleetResult baseline =
        fleet::runFleetDiagnosis(bug, clean);
    ASSERT_TRUE(baseline.diagnosed);

    fleet::FleetOptions lossy = clean;
    lossy.duplicateEvery = 2;
    lossy.corruptEvery = 3;
    fleet::FleetResult faulty = fleet::runFleetDiagnosis(bug, lossy);
    ASSERT_TRUE(faulty.diagnosed);
    EXPECT_GT(faulty.duplicates, 0u);
    EXPECT_GT(faulty.decodeErrors, 0u);
    expectSameRanking(faulty.ranking, baseline.ranking);
}

TEST(FleetSim, ShardCountDoesNotChangeTheRanking)
{
    BugSpec bug = corpus::bugById("sort");
    fleet::FleetOptions one;
    one.shards = 1;
    one.jobs = 1;
    fleet::FleetOptions many = one;
    many.shards = 8;
    fleet::FleetResult a = fleet::runFleetDiagnosis(bug, one);
    fleet::FleetResult b = fleet::runFleetDiagnosis(bug, many);
    ASSERT_TRUE(a.diagnosed);
    ASSERT_TRUE(b.diagnosed);
    expectSameRanking(a.ranking, b.ranking);
}

} // namespace
} // namespace stm
