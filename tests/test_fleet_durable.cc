/**
 * @file
 * Tests for the durable fleet subsystem (src/fleet/durable): snapshot
 * round-trip, canonical-bytes determinism, and hostile-byte sweeps;
 * the merge algebra (associative, commutative, idempotent) across
 * shuffled partitions for 1/2/4/8 collectors; WAL append/replay with
 * torn-tail and every-byte corruption sweeps; durable collector epoch
 * rolls, crash recovery, and ranking reconvergence; the publishAll
 * stats barrier and dedup preseeding; and the reactive campaign's
 * sharding-independence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "corpus/registry.hh"
#include "diag/ranker.hh"
#include "fleet/collector.hh"
#include "fleet/durable/campaign.hh"
#include "fleet/durable/durable_collector.hh"
#include "fleet/durable/snapshot.hh"
#include "fleet/durable/wal.hh"
#include "support/checksum.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace stm
{
namespace
{

using fleet::Collector;
using fleet::CollectorOptions;
using fleet::DurableCollector;
using fleet::DurableOptions;
using fleet::IncrementalRanker;
using fleet::IngestStatus;
using fleet::RankerSnapshot;
using fleet::ReportDigest;
using fleet::RunProfile;
using fleet::SnapStatus;
using fleet::WalRecord;
using fleet::WalReplayResult;
using fleet::WalStatus;
using fleet::WalWriter;

// ---- helpers ------------------------------------------------------------

/** A deterministic pseudo-random RunProfile (mirrors test_fleet.cc). */
RunProfile
randomProfile(Pcg32 &rng)
{
    RunProfile p;
    p.machineId = rng.next();
    p.runSeed = (static_cast<std::uint64_t>(rng.next()) << 32) |
                rng.next();
    p.bugId = "bug-" + std::to_string(rng.nextBounded(1000));
    p.failure = rng.nextBool(0.5);
    p.kind = rng.nextBool(0.5) ? ProfileKind::Lbr : ProfileKind::Lcr;
    p.site = rng.nextBounded(100);
    p.thread = rng.nextBounded(8);
    p.step = rng.next();

    std::uint32_t nLbr =
        p.kind == ProfileKind::Lbr ? rng.nextBounded(17) : 0;
    for (std::uint32_t i = 0; i < nLbr; ++i) {
        BranchRecord b;
        b.fromIp = layout::codeAddr(rng.nextBounded(500));
        b.toIp = layout::codeAddr(rng.nextBounded(500));
        b.kind = static_cast<BranchKind>(1 + rng.nextBounded(7));
        b.kernel = rng.nextBool(0.1);
        b.srcBranch = rng.nextBool(0.8) ? rng.nextBounded(64)
                                        : kNoSourceBranch;
        b.outcome = rng.nextBool(0.5);
        p.lbr.push_back(b);
    }
    std::uint32_t nLcr =
        p.kind == ProfileKind::Lcr ? rng.nextBounded(17) : 0;
    for (std::uint32_t i = 0; i < nLcr; ++i) {
        LcrRecord c;
        c.pc = layout::codeAddr(rng.nextBounded(500));
        c.observed = static_cast<MesiState>(rng.nextBounded(4));
        c.store = rng.nextBool(0.5);
        p.lcr.push_back(c);
    }
    return p;
}

/** The (fingerprint, digest) pair one profile contributes. */
std::pair<std::uint64_t, ReportDigest>
entryOf(const RunProfile &p)
{
    std::vector<std::uint8_t> wire = fleet::serialize(p);
    fleet::RunProfileView view;
    EXPECT_EQ(fleet::decodeFrameView(wire.data(), wire.size(), &view),
              fleet::WireStatus::Ok);
    return {fleet::fingerprint(p), fleet::digestOfView(view)};
}

/** N random profiles with pairwise-distinct fingerprints. */
std::vector<RunProfile>
distinctProfiles(Pcg32 &rng, std::size_t n)
{
    std::vector<RunProfile> out;
    std::set<std::uint64_t> prints;
    while (out.size() < n) {
        RunProfile p = randomProfile(rng);
        if (prints.insert(fleet::fingerprint(p)).second)
            out.push_back(std::move(p));
    }
    return out;
}

RankerSnapshot::ReportMap
mapOf(const std::vector<RunProfile> &profiles)
{
    RankerSnapshot::ReportMap m;
    for (const RunProfile &p : profiles)
        m.insert(entryOf(p));
    return m;
}

void
expectSameRanking(const std::vector<RankedEvent> &a,
                  const std::vector<RankedEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].event, b[i].event) << "rank " << i;
        EXPECT_EQ(a[i].absence, b[i].absence) << "rank " << i;
        EXPECT_EQ(a[i].failureRuns, b[i].failureRuns) << "rank " << i;
        EXPECT_EQ(a[i].successRuns, b[i].successRuns) << "rank " << i;
        EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << "rank " << i;
        EXPECT_DOUBLE_EQ(a[i].precision, b[i].precision)
            << "rank " << i;
        EXPECT_DOUBLE_EQ(a[i].recall, b[i].recall) << "rank " << i;
    }
}

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "stm_durable_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

// ---- snapshot round trip and canonical bytes ----------------------------

TEST(RankerSnapshot, RoundTripsRandomStores)
{
    Pcg32 rng(11);
    for (int iter = 0; iter < 20; ++iter) {
        RankerSnapshot snap(1 + rng.nextBounded(5), rng.next(),
                            mapOf(distinctProfiles(rng, 8)));
        std::vector<std::uint8_t> bytes = snap.serialize();
        RankerSnapshot decoded;
        ASSERT_EQ(RankerSnapshot::deserialize(bytes, &decoded),
                  SnapStatus::Ok)
            << "iteration " << iter;
        EXPECT_EQ(snap, decoded);
    }
}

TEST(RankerSnapshot, RoundTripsEmptyStore)
{
    RankerSnapshot snap(1, 0, {});
    std::vector<std::uint8_t> bytes = snap.serialize();
    RankerSnapshot decoded;
    ASSERT_EQ(RankerSnapshot::deserialize(bytes, &decoded),
              SnapStatus::Ok);
    EXPECT_EQ(snap, decoded);
    EXPECT_EQ(decoded.reportCount(), 0u);
}

TEST(RankerSnapshot, EqualStoresSerializeToEqualBytes)
{
    // The canonical-bytes guarantee: two stores with the same content
    // — built in different insertion orders — produce identical
    // files. This is what makes "bit-identical merged snapshot" a
    // meaningful claim.
    Pcg32 rng(12);
    std::vector<RunProfile> profiles = distinctProfiles(rng, 12);
    RankerSnapshot::ReportMap forward = mapOf(profiles);
    std::reverse(profiles.begin(), profiles.end());
    RankerSnapshot::ReportMap backward = mapOf(profiles);
    EXPECT_EQ(RankerSnapshot(3, 7, forward).serialize(),
              RankerSnapshot(3, 7, backward).serialize());
}

TEST(RankerSnapshot, FileRoundTripIsAtomic)
{
    Pcg32 rng(13);
    std::string dir = scratchDir("snapfile");
    RankerSnapshot snap(2, 5, mapOf(distinctProfiles(rng, 6)));
    std::string path = dir + "/s.stms";
    std::size_t bytes = 0;
    ASSERT_TRUE(snap.writeFile(path, &bytes));
    EXPECT_EQ(bytes, snap.serialize().size());
    // No temp file left behind.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    RankerSnapshot decoded;
    ASSERT_EQ(RankerSnapshot::readFile(path, &decoded),
              SnapStatus::Ok);
    EXPECT_EQ(snap, decoded);
    // Missing file is Truncated, not a crash.
    EXPECT_EQ(RankerSnapshot::readFile(dir + "/absent.stms",
                                       &decoded),
              SnapStatus::Truncated);
}

// ---- snapshot hostile-byte discipline -----------------------------------

TEST(RankerSnapshot, EveryTruncationFailsCleanly)
{
    Pcg32 rng(14);
    RankerSnapshot snap(1, 3, mapOf(distinctProfiles(rng, 5)));
    std::vector<std::uint8_t> bytes = snap.serialize();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        RankerSnapshot out;
        EXPECT_NE(RankerSnapshot::deserialize(bytes.data(), len,
                                              &out),
                  SnapStatus::Ok)
            << "prefix length " << len;
    }
}

TEST(RankerSnapshot, EverySingleByteCorruptionIsRejected)
{
    // Every byte of the file matters: magic flips are BadMagic,
    // version flips BadVersion (before the CRC is even consulted),
    // and *everything* else — flags, length, CRC field, payload — is
    // covered by the checksum, so no single-byte change can smuggle a
    // different store past the decoder.
    Pcg32 rng(15);
    RankerSnapshot snap(1, 9, mapOf(distinctProfiles(rng, 4)));
    std::vector<std::uint8_t> bytes = snap.serialize();
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::vector<std::uint8_t> mutated = bytes;
        mutated[i] ^= 0x5A;
        RankerSnapshot out;
        SnapStatus status = RankerSnapshot::deserialize(
            mutated.data(), mutated.size(), &out);
        EXPECT_NE(status, SnapStatus::Ok) << "byte " << i;
    }
}

TEST(RankerSnapshot, RejectsNonCanonicalOrder)
{
    // Hand-build a payload with descending fingerprints: structurally
    // plausible, CRC-correct, but non-canonical — must be Malformed,
    // or two "equal" snapshots could serialize to different bytes.
    Pcg32 rng(16);
    std::vector<RunProfile> profiles = distinctProfiles(rng, 2);
    RankerSnapshot snap(1, 1, mapOf(profiles));
    std::vector<std::uint8_t> bytes = snap.serialize();
    RankerSnapshot decoded;
    ASSERT_EQ(RankerSnapshot::deserialize(bytes, &decoded),
              SnapStatus::Ok);

    // Duplicate-fingerprint (equal keys) is equally non-canonical:
    // splice the first report in twice via the public merge path is
    // impossible, so check the decoder directly by corrupting count
    // coherence instead: claim one more report than present.
    std::vector<std::uint8_t> overcount = bytes;
    // reportCount lives at payload offset 16 (LE u64).
    overcount[fleet::kSnapHeaderSize + 16] =
        static_cast<std::uint8_t>(snap.reportCount() + 1);
    // Fix the CRC so only the structural check can reject.
    std::uint32_t crc = crc32Init();
    crc = crc32Update(crc, overcount.data() + 4, 8);
    crc = crc32Update(crc, overcount.data() + fleet::kSnapHeaderSize,
                      overcount.size() - fleet::kSnapHeaderSize);
    crc = crc32Final(crc);
    overcount[12] = static_cast<std::uint8_t>(crc);
    overcount[13] = static_cast<std::uint8_t>(crc >> 8);
    overcount[14] = static_cast<std::uint8_t>(crc >> 16);
    overcount[15] = static_cast<std::uint8_t>(crc >> 24);
    EXPECT_EQ(RankerSnapshot::deserialize(overcount, &decoded),
              SnapStatus::Malformed);
}

// ---- merge algebra ------------------------------------------------------

TEST(SnapshotMerge, IsIdempotent)
{
    Pcg32 rng(21);
    RankerSnapshot snap(2, 4, mapOf(distinctProfiles(rng, 10)));
    RankerSnapshot doubled = snap;
    doubled.merge(snap);
    EXPECT_EQ(doubled, snap);
    EXPECT_EQ(doubled.serialize(), snap.serialize());
}

TEST(SnapshotMerge, IdentityElementIsNeutralOnBothSides)
{
    Pcg32 rng(22);
    RankerSnapshot snap(3, 6, mapOf(distinctProfiles(rng, 6)));
    RankerSnapshot leftId;
    leftId.merge(snap);
    EXPECT_EQ(leftId, snap);
    RankerSnapshot rightId = snap;
    rightId.merge(RankerSnapshot());
    EXPECT_EQ(rightId, snap);
}

TEST(SnapshotMerge, IsCommutativeAndAssociative)
{
    Pcg32 rng(23);
    for (int iter = 0; iter < 10; ++iter) {
        std::vector<RunProfile> pool = distinctProfiles(rng, 15);
        // Three overlapping slices (overlap exercises idempotence
        // inside the algebra, not just at the whole-snapshot level).
        auto slice = [&](std::size_t lo, std::size_t hi) {
            return std::vector<RunProfile>(pool.begin() + lo,
                                           pool.begin() + hi);
        };
        RankerSnapshot a(1, 2, mapOf(slice(0, 8)));
        RankerSnapshot b(2, 5, mapOf(slice(4, 12)));
        RankerSnapshot c(3, 1, mapOf(slice(9, 15)));

        RankerSnapshot ab = a;
        ab.merge(b);
        RankerSnapshot ba = b;
        ba.merge(a);
        EXPECT_EQ(ab, ba);
        EXPECT_EQ(ab.serialize(), ba.serialize());

        RankerSnapshot ab_c = ab;
        ab_c.merge(c);
        RankerSnapshot bc = b;
        bc.merge(c);
        RankerSnapshot a_bc = a;
        a_bc.merge(bc);
        EXPECT_EQ(ab_c, a_bc);
        EXPECT_EQ(ab_c.serialize(), a_bc.serialize());
        EXPECT_EQ(ab_c.collectorId(), 1u);
        EXPECT_EQ(ab_c.epoch(), 5u);
    }
}

TEST(SnapshotMerge, ShuffledPartitionsMergeBitIdentically)
{
    // The multi-collector contract: split one report stream across C
    // collectors (any assignment), merge the C snapshots in any
    // order — the merged *bytes* equal the single-collector
    // snapshot's, for C in {1, 2, 4, 8}.
    Pcg32 rng(24);
    std::vector<RunProfile> pool = distinctProfiles(rng, 40);
    RankerSnapshot whole(1, 3, mapOf(pool));
    std::vector<std::uint8_t> wholeBytes = whole.serialize();

    for (unsigned collectors : {1u, 2u, 4u, 8u}) {
        for (int shuffle = 0; shuffle < 4; ++shuffle) {
            // Random assignment of report -> collector.
            std::vector<std::vector<RunProfile>> parts(collectors);
            for (const RunProfile &p : pool)
                parts[rng.nextBounded(collectors)].push_back(p);
            std::vector<RankerSnapshot> snaps;
            for (unsigned c = 0; c < collectors; ++c)
                snaps.emplace_back(c + 1, 3, mapOf(parts[c]));
            // Merge in a shuffled order.
            for (std::size_t i = snaps.size(); i > 1; --i)
                std::swap(snaps[i - 1],
                          snaps[rng.nextBounded(
                              static_cast<std::uint32_t>(i))]);
            RankerSnapshot merged;
            for (const RankerSnapshot &s : snaps)
                merged.merge(s);
            EXPECT_EQ(merged.serialize(), wholeBytes)
                << collectors << " collectors, shuffle " << shuffle;
            expectSameRanking(merged.rank(true), whole.rank(true));
        }
    }
}

TEST(SnapshotMerge, MergedRankingEqualsUnionRanker)
{
    // Ranking a merged snapshot == an IncrementalRanker fed the union
    // exactly once (the ranking is a pure function of the
    // deduplicated report set).
    Pcg32 rng(25);
    std::vector<RunProfile> pool = distinctProfiles(rng, 30);
    RankerSnapshot left(1, 1,
                        mapOf({pool.begin(), pool.begin() + 20}));
    RankerSnapshot right(2, 1,
                         mapOf({pool.begin() + 10, pool.end()}));
    left.merge(right);

    IncrementalRanker reference;
    for (const RunProfile &p : pool)
        reference.ingest(p);
    expectSameRanking(left.rank(false), reference.rank(false));
    expectSameRanking(left.rank(true), reference.rank(true));
}

// ---- WAL ---------------------------------------------------------------

TEST(Wal, AppendReplayRoundTrips)
{
    Pcg32 rng(31);
    std::string dir = scratchDir("walrt");
    std::vector<WalRecord> expected;
    {
        WalWriter writer(dir, 1);
        for (int i = 0; i < 50; ++i) {
            RunProfile p = randomProfile(rng);
            std::vector<std::uint8_t> frame = fleet::serialize(p);
            std::uint64_t epoch = static_cast<std::uint64_t>(i / 10);
            writer.append(epoch, frame.data(), frame.size());
            expected.push_back({epoch, frame});
        }
        EXPECT_EQ(writer.recordsAppended(), 50u);
    }
    std::vector<WalRecord> replayed;
    WalReplayResult result = fleet::replayWalDir(
        dir, 1, [&](const WalRecord &r) { replayed.push_back(r); });
    EXPECT_EQ(result.status, WalStatus::Ok);
    EXPECT_EQ(replayed, expected);
}

TEST(Wal, RotatesSegmentsAndPrunesCoveredOnes)
{
    Pcg32 rng(32);
    std::string dir = scratchDir("walrot");
    WalWriter writer(dir, 7, /*rotate_bytes=*/256);
    std::vector<WalRecord> expected;
    for (int i = 0; i < 40; ++i) {
        RunProfile p = randomProfile(rng);
        std::vector<std::uint8_t> frame = fleet::serialize(p);
        std::uint64_t epoch = static_cast<std::uint64_t>(i / 8);
        writer.append(epoch, frame.data(), frame.size());
        expected.push_back({epoch, frame});
    }
    writer.flush();
    EXPECT_GT(writer.segmentsOpened(), 3u);
    EXPECT_EQ(fleet::walSegments(dir, 7).size(),
              writer.segmentsOpened());

    // Everything replays across segment boundaries.
    std::vector<WalRecord> replayed;
    EXPECT_EQ(fleet::replayWalDir(dir, 7,
                                  [&](const WalRecord &r) {
                                      replayed.push_back(r);
                                  })
                  .status,
              WalStatus::Ok);
    EXPECT_EQ(replayed, expected);

    // Pruning at epoch 2 deletes only segments entirely <= epoch 2;
    // replay afterwards yields a suffix (plus everything >= the cut).
    writer.prune(2);
    std::vector<WalRecord> after;
    EXPECT_EQ(fleet::replayWalDir(dir, 7,
                                  [&](const WalRecord &r) {
                                      after.push_back(r);
                                  })
                  .status,
              WalStatus::Ok);
    EXPECT_LT(after.size(), expected.size());
    for (const WalRecord &r : after) {
        EXPECT_TRUE(std::find(expected.begin(), expected.end(), r) !=
                    expected.end());
    }
    // Every record from epochs > 2 survived.
    std::size_t younger = 0;
    for (const WalRecord &r : expected)
        if (r.epoch > 2)
            ++younger;
    std::size_t youngerAfter = 0;
    for (const WalRecord &r : after)
        if (r.epoch > 2)
            ++youngerAfter;
    EXPECT_EQ(younger, youngerAfter);

    // Pruning at the max epoch leaves just the active segment.
    writer.prune(~std::uint64_t{0});
    EXPECT_EQ(fleet::walSegments(dir, 7).size(), 1u);
}

TEST(Wal, EveryTruncationReplaysTheExactPrefix)
{
    Pcg32 rng(33);
    std::string dir = scratchDir("waltrunc");
    std::vector<WalRecord> expected;
    std::vector<std::size_t> boundaries; // offsets after each record
    {
        WalWriter writer(dir, 1);
        std::size_t off = fleet::kWalSegmentHeaderSize;
        for (int i = 0; i < 8; ++i) {
            RunProfile p = randomProfile(rng);
            std::vector<std::uint8_t> frame = fleet::serialize(p);
            off += writer.append(static_cast<std::uint64_t>(i),
                                 frame.data(), frame.size());
            expected.push_back(
                {static_cast<std::uint64_t>(i), frame});
            boundaries.push_back(off);
        }
    }
    std::string path = fleet::walSegmentPath(dir, 1, 0);
    std::vector<std::uint8_t> full = readFileBytes(path);
    ASSERT_EQ(full.size(), boundaries.back());

    for (std::size_t len = 0; len <= full.size(); ++len) {
        writeFileBytes(path, {full.begin(), full.begin() + len});
        std::vector<WalRecord> replayed;
        WalReplayResult result = fleet::replayWalSegment(
            path, [&](const WalRecord &r) { replayed.push_back(r); });
        // Exactly the records entirely within the prefix replay.
        std::size_t complete = 0;
        while (complete < boundaries.size() &&
               boundaries[complete] <= len) {
            ++complete;
        }
        ASSERT_EQ(replayed.size(), complete) << "cut at " << len;
        for (std::size_t i = 0; i < complete; ++i)
            EXPECT_EQ(replayed[i], expected[i]) << "cut at " << len;
        // A cut exactly on a record boundary is indistinguishable
        // from a clean close (torn tails at boundaries are fine);
        // any other cut must say why it stopped.
        bool boundary =
            len == fleet::kWalSegmentHeaderSize ||
            std::find(boundaries.begin(), boundaries.end(), len) !=
                boundaries.end();
        if (boundary)
            EXPECT_EQ(result.status, WalStatus::Ok)
                << "cut at " << len;
        else
            EXPECT_NE(result.status, WalStatus::Ok)
                << "cut at " << len;
    }
}

TEST(Wal, EverySingleByteCorruptionReplaysAPrefixOnly)
{
    // The prefix-replay property: corrupt any byte of the file; the
    // records delivered must be an exact prefix of the originals —
    // never a misread frame, never a crash. Bytes in the segment
    // header's unprotected metadata (flags, collectorId) don't gate
    // record framing, so a full replay is acceptable there; any lost
    // record must be accompanied by a non-Ok status.
    Pcg32 rng(34);
    std::string dir = scratchDir("walcorrupt");
    std::vector<WalRecord> expected;
    {
        WalWriter writer(dir, 1);
        for (int i = 0; i < 5; ++i) {
            RunProfile p = randomProfile(rng);
            std::vector<std::uint8_t> frame = fleet::serialize(p);
            writer.append(static_cast<std::uint64_t>(i),
                          frame.data(), frame.size());
            expected.push_back(
                {static_cast<std::uint64_t>(i), frame});
        }
    }
    std::string path = fleet::walSegmentPath(dir, 1, 0);
    std::vector<std::uint8_t> full = readFileBytes(path);

    for (std::size_t i = 0; i < full.size(); ++i) {
        std::vector<std::uint8_t> mutated = full;
        mutated[i] ^= 0xA5;
        writeFileBytes(path, mutated);
        std::vector<WalRecord> replayed;
        WalReplayResult result = fleet::replayWalSegment(
            path, [&](const WalRecord &r) { replayed.push_back(r); });
        ASSERT_LE(replayed.size(), expected.size()) << "byte " << i;
        for (std::size_t r = 0; r < replayed.size(); ++r)
            EXPECT_EQ(replayed[r], expected[r])
                << "byte " << i << " record " << r;
        if (replayed.size() != expected.size()) {
            EXPECT_NE(result.status, WalStatus::Ok) << "byte " << i;
        }
    }
}

// ---- collector satellites: publishAll and preseed -----------------------

TEST(CollectorPublish, PublishAllIsOnePointInTimeCut)
{
    Pcg32 rng(41);
    CollectorOptions opts;
    opts.shards = 4;
    Collector collector(opts);
    std::vector<RunProfile> pool = distinctProfiles(rng, 64);
    for (const RunProfile &p : pool)
        ASSERT_EQ(collector.submit(p), IngestStatus::Accepted);

    collector.publishAll();
    // After the barrier, the published shard counters sum to the
    // published aggregate — one consistent cut, no re-publication
    // in between.
    std::uint64_t shardAccepted = 0;
    for (unsigned s = 0; s < collector.shards(); ++s) {
        // Values were published by publishAll; reading the group
        // again must not be required for consistency, so read the
        // raw group the barrier filled.
        shardAccepted += collector.shardStats(s).value("accepted");
    }
    EXPECT_EQ(shardAccepted, collector.stats().value("accepted"));
    EXPECT_EQ(collector.stats().value("accepted"), pool.size());

    // The queue-depth gauge reflects queued frames until drained.
    double depth = 0;
    for (unsigned s = 0; s < collector.shards(); ++s)
        depth += collector.shardStats(s).gaugeValue("queue_depth");
    EXPECT_EQ(static_cast<std::uint64_t>(depth), pool.size());
    collector.drain();
    collector.publishAll();
    depth = 0;
    for (unsigned s = 0; s < collector.shards(); ++s)
        depth += collector.shardStats(s).gaugeValue("queue_depth");
    EXPECT_EQ(depth, 0.0);
}

TEST(CollectorPreseed, PreseededFingerprintsAreDuplicates)
{
    Pcg32 rng(42);
    Collector collector;
    RunProfile p = randomProfile(rng);
    EXPECT_TRUE(collector.preseed(fleet::fingerprint(p)));
    EXPECT_FALSE(collector.preseed(fleet::fingerprint(p)));
    EXPECT_EQ(collector.submit(p), IngestStatus::Duplicate);
    // Preseeding leaves no accounting trace: the duplicate above is
    // the first counted interaction.
    EXPECT_EQ(collector.stats().value("accepted"), 0u);
    EXPECT_EQ(collector.stats().value("duplicates"), 1u);
}

// ---- durable collector --------------------------------------------------

TEST(DurableCollector, RejectsTheReservedIdentityId)
{
    DurableOptions opts;
    opts.dir = scratchDir("durbadid");
    opts.collectorId = 0;
    EXPECT_THROW(DurableCollector{opts}, FatalError);
}

TEST(DurableCollector, EpochRollWritesAMergeableSnapshot)
{
    Pcg32 rng(51);
    std::string dir = scratchDir("durroll");
    DurableOptions opts;
    opts.dir = dir;
    opts.collectorId = 1;
    DurableCollector collector(opts);
    EXPECT_FALSE(collector.recovery().recovered);

    std::vector<RunProfile> pool = distinctProfiles(rng, 20);
    for (const RunProfile &p : pool)
        ASSERT_EQ(collector.submit(p), IngestStatus::Accepted);
    EXPECT_EQ(collector.epoch(), 0u);
    fleet::RankerSnapshot snap = collector.rollEpoch();
    EXPECT_EQ(snap.epoch(), 0u);
    EXPECT_EQ(collector.epoch(), 1u);
    EXPECT_EQ(snap.reportCount(), pool.size());

    // The on-disk snapshot decodes to exactly the returned one.
    RankerSnapshot fromDisk;
    ASSERT_EQ(RankerSnapshot::readFile(collector.snapshotPath(0),
                                       &fromDisk),
              SnapStatus::Ok);
    EXPECT_EQ(fromDisk, snap);

    // And its ranking equals the live ranker's.
    expectSameRanking(snap.rank(false), collector.rank(false));

    const StatGroup &stats = collector.stats();
    EXPECT_EQ(stats.value("epochs_rolled"), 1u);
    EXPECT_EQ(stats.value("snapshots_written"), 1u);
    EXPECT_EQ(stats.value("frames_spilled"), pool.size());
    EXPECT_EQ(static_cast<std::uint64_t>(
                  stats.gaugeValue("stored_reports")),
              pool.size());
}

TEST(DurableCollector, RecoversFromSnapshotPlusWalTail)
{
    Pcg32 rng(52);
    std::string dir = scratchDir("durrecover");
    std::vector<RunProfile> pool = distinctProfiles(rng, 30);

    DurableOptions opts;
    opts.dir = dir;
    opts.collectorId = 1;

    // Uninterrupted reference run in a separate directory.
    std::vector<RankedEvent> reference;
    RankerSnapshot referenceSnap;
    {
        DurableOptions refOpts = opts;
        refOpts.dir = scratchDir("durrecover_ref");
        DurableCollector ref(refOpts);
        for (const RunProfile &p : pool)
            ref.submit(p);
        referenceSnap = ref.rollEpoch();
        reference = referenceSnap.rank(true);
    }

    // Interrupted run: snapshot after 10, WAL-only tail of 10 more,
    // then the process "dies" (destruction flushes the WAL — the
    // unflushed-loss case is exercised by the tool test's _exit).
    {
        DurableCollector first(opts);
        for (std::size_t i = 0; i < 10; ++i)
            first.submit(pool[i]);
        first.rollEpoch();
        for (std::size_t i = 10; i < 20; ++i)
            first.submit(pool[i]);
        // No roll: reports 10..19 exist only in the WAL.
    }

    DurableCollector second(opts);
    const fleet::RecoveryReport &rec = second.recovery();
    EXPECT_TRUE(rec.recovered);
    EXPECT_TRUE(rec.snapshotLoaded);
    EXPECT_EQ(rec.snapshotEpoch, 0u);
    EXPECT_EQ(rec.snapshotReports, 10u);
    EXPECT_EQ(rec.walRecordsReplayed, 10u);
    EXPECT_EQ(second.storedReports(), 20u);

    // The at-least-once transport re-sends everything; recovered
    // reports must all be duplicates.
    std::size_t duplicates = 0;
    for (const RunProfile &p : pool) {
        if (second.submit(p) == IngestStatus::Duplicate)
            ++duplicates;
    }
    EXPECT_EQ(duplicates, 20u);
    RankerSnapshot snap = second.rollEpoch();

    // Identical deduplicated store => identical ranking, and the
    // stores themselves match report for report.
    expectSameRanking(snap.rank(true), reference);
    EXPECT_EQ(snap.reports(), referenceSnap.reports());
}

TEST(DurableCollector, RecoversThroughATornWalTail)
{
    Pcg32 rng(53);
    std::string dir = scratchDir("durtorn");
    std::vector<RunProfile> pool = distinctProfiles(rng, 12);
    DurableOptions opts;
    opts.dir = dir;
    opts.collectorId = 1;
    {
        DurableCollector first(opts);
        for (const RunProfile &p : pool)
            first.submit(p);
        // Crash before any roll: WAL only (flushed by destruction).
    }
    // Tear the tail mid-record, as an _exit with a part-written
    // buffer would.
    std::vector<std::uint64_t> segs = fleet::walSegments(dir, 1);
    ASSERT_FALSE(segs.empty());
    std::string path = fleet::walSegmentPath(dir, 1, segs.back());
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    ASSERT_GT(bytes.size(), 30u);
    writeFileBytes(path, {bytes.begin(), bytes.end() - 13});

    DurableCollector second(opts);
    EXPECT_TRUE(second.recovery().recovered);
    EXPECT_LT(second.storedReports(), pool.size());
    // Re-sending converges: lost-tail frames are accepted (novel),
    // recovered ones are duplicates, and the final state matches an
    // uninterrupted run's.
    for (const RunProfile &p : pool)
        second.submit(p);
    second.pump();
    EXPECT_EQ(second.storedReports(), pool.size());

    IncrementalRanker reference;
    for (const RunProfile &p : pool)
        reference.ingest(p);
    expectSameRanking(second.rank(true), reference.rank(true));
}

TEST(DurableCollector, PrunesWalOnceSnapshotCovers)
{
    Pcg32 rng(54);
    std::string dir = scratchDir("durprune");
    DurableOptions opts;
    opts.dir = dir;
    opts.collectorId = 1;
    opts.walRotateBytes = 256; // force many segments
    DurableCollector collector(opts);
    std::vector<RunProfile> pool = distinctProfiles(rng, 30);
    for (std::size_t i = 0; i < pool.size(); ++i) {
        collector.submit(pool[i]);
        if (i % 10 == 9)
            collector.rollEpoch();
    }
    // After the final roll, the whole store is covered: only the
    // active segment may remain.
    collector.rollEpoch();
    EXPECT_EQ(fleet::walSegments(dir, 1).size(), 1u);
    // And only the newest snapshot file remains.
    EXPECT_EQ(fleet::listSnapshotFiles(dir).size(), 1u);
}

TEST(DurableCollector, TwoCollectorsMergeBitIdenticallyToOne)
{
    Pcg32 rng(55);
    std::vector<RunProfile> pool = distinctProfiles(rng, 40);

    // Single collector over the union.
    std::string dirOne = scratchDir("duronecoll");
    DurableOptions one;
    one.dir = dirOne;
    one.collectorId = 1;
    DurableCollector single(one);
    for (const RunProfile &p : pool)
        single.submit(p);
    RankerSnapshot whole = single.rollEpoch();

    // Two collectors sharding by machine id, same directory.
    std::string dirTwo = scratchDir("durtwocoll");
    for (unsigned c = 0; c < 2; ++c) {
        DurableOptions opts;
        opts.dir = dirTwo;
        opts.collectorId = c + 1;
        DurableCollector collector(opts);
        for (const RunProfile &p : pool)
            if (p.machineId % 2 == c)
                collector.submit(p);
        collector.rollEpoch();
    }
    fleet::MergeResult merged = fleet::mergeSnapshotDir(dirTwo);
    EXPECT_EQ(merged.filesMerged, 2u);
    EXPECT_EQ(merged.filesSkipped, 0u);

    // Same epoch, collectorId min = 1: byte-identical snapshots.
    EXPECT_EQ(merged.merged.serialize(), whole.serialize());
    expectSameRanking(merged.merged.rank(true), whole.rank(true));
}

// ---- ranker export/import ----------------------------------------------

TEST(RankerStats, ExportImportRoundTripsBothRankers)
{
    Pcg32 rng(61);
    std::vector<RunProfile> pool = distinctProfiles(rng, 25);
    IncrementalRanker original;
    for (const RunProfile &p : pool)
        original.ingest(p);

    IncrementalRanker restored;
    restored.importStats(original.exportStats());
    expectSameRanking(restored.rank(true), original.rank(true));
    EXPECT_EQ(restored.failureReports(), original.failureReports());
    EXPECT_EQ(restored.successReports(), original.successReports());

    StatisticalRanker batch;
    batch.importStats(original.exportStats());
    expectSameRanking(batch.rank(true), original.rank(true));
    EXPECT_EQ(batch.exportStats(), original.exportStats());
}

TEST(RankerStats, SnapshotSufficientStatsMatchTheRanker)
{
    Pcg32 rng(62);
    std::vector<RunProfile> pool = distinctProfiles(rng, 25);
    RankerSnapshot snap(1, 0, mapOf(pool));
    IncrementalRanker reference;
    for (const RunProfile &p : pool)
        reference.ingest(p);
    EXPECT_EQ(snap.sufficientStats(), reference.exportStats());
}

// ---- campaign -----------------------------------------------------------

class CampaignTest : public ::testing::Test
{
  protected:
    static fleet::CampaignPools &
    pools()
    {
        // The capture pipeline is the expensive part; share one pool
        // across the campaign tests (it is immutable).
        static fleet::CampaignPools shared = [] {
            fleet::FleetOptions opts;
            opts.jobs = 1;
            return fleet::buildCampaignPools(
                corpus::bugById("cp"), opts);
        }();
        return shared;
    }
};

TEST_F(CampaignTest, DiagnosesAndIsShardingIndependent)
{
    ASSERT_TRUE(pools().valid);
    fleet::CampaignResult reference;
    for (unsigned collectors : {1u, 2u, 4u}) {
        fleet::CampaignOptions opts;
        opts.machines = 64;
        opts.collectors = collectors;
        opts.dir = scratchDir("campaign" +
                              std::to_string(collectors));
        opts.failureProbability = 0.05;
        opts.successSampleEvery = 4;
        opts.maxRounds = 16;
        opts.seed = 9;
        fleet::CampaignResult result =
            fleet::runDurableCampaign(pools(), opts);
        EXPECT_TRUE(result.diagnosed)
            << collectors << " collectors";
        if (collectors == 1) {
            reference = result;
            continue;
        }
        // The failure schedule and the merged diagnosis are both
        // independent of how the fleet is sharded.
        EXPECT_EQ(result.rounds, reference.rounds);
        EXPECT_EQ(result.pinRound, reference.pinRound);
        EXPECT_EQ(result.mergedReports, reference.mergedReports);
        expectSameRanking(result.ranking, reference.ranking);
    }
}

TEST_F(CampaignTest, DuplicateRetransmissionsAreInvisible)
{
    ASSERT_TRUE(pools().valid);
    fleet::CampaignOptions opts;
    opts.machines = 48;
    opts.collectors = 2;
    opts.failureProbability = 0.05;
    opts.successSampleEvery = 4;
    opts.maxRounds = 16;
    opts.seed = 10;

    opts.dir = scratchDir("campclean");
    fleet::CampaignResult clean =
        fleet::runDurableCampaign(pools(), opts);
    opts.dir = scratchDir("campdup");
    opts.duplicateEvery = 2;
    fleet::CampaignResult faulty =
        fleet::runDurableCampaign(pools(), opts);
    EXPECT_GT(faulty.duplicates, 0u);
    EXPECT_EQ(faulty.rounds, clean.rounds);
    EXPECT_EQ(faulty.mergedReports, clean.mergedReports);
    expectSameRanking(faulty.ranking, clean.ranking);
}

TEST_F(CampaignTest, ProactiveDiagnosesNoLaterThanReactive)
{
    ASSERT_TRUE(pools().valid);
    fleet::CampaignOptions opts;
    opts.machines = 64;
    opts.collectors = 2;
    opts.failureProbability = 0.02;
    opts.successSampleEvery = 4;
    opts.maxRounds = 32;
    opts.seed = 11;

    opts.dir = scratchDir("campreact");
    opts.scheme = transform::SuccessSiteScheme::Reactive;
    fleet::CampaignResult reactive =
        fleet::runDurableCampaign(pools(), opts);
    opts.dir = scratchDir("campproact");
    opts.scheme = transform::SuccessSiteScheme::Proactive;
    fleet::CampaignResult proactive =
        fleet::runDurableCampaign(pools(), opts);
    ASSERT_TRUE(reactive.diagnosed);
    ASSERT_TRUE(proactive.diagnosed);
    // Proactive machines were instrumented from round one: success
    // context is already flowing when the first failure lands, so
    // the diagnosis clock can only be shorter or equal (Figure 8's
    // tradeoff — the cost is the always-on success traffic).
    EXPECT_LE(proactive.rounds, reactive.rounds);
    EXPECT_GE(proactive.successReports, reactive.successReports);
}

} // namespace
} // namespace stm
