/**
 * @file
 * Golden-determinism tests for the interpreter hot path.
 *
 * The single-run fast path (flat paged memory image, per-pc hook side
 * tables, precomputed dispatch flags, cache MRU fast path) must keep
 * every RunResult bit-identical to the seed interpreter: same RNG
 * draws, same step counts, same profiles, same stats. These tests pin
 * that contract with 64-bit FNV-1a fingerprints over a canonical
 * serialization of RunResult, captured from the seed interpreter
 * across the full corpus registry under several instrumentation
 * configurations, and checked into this file.
 *
 * If a change *intends* to alter observable run behavior (it almost
 * never should), regenerate the table by running this binary with
 * STM_GOLDEN_DUMP=1 and paste the printed rows below.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>

#include "corpus/registry.hh"
#include "diag/auto_diag.hh"
#include "exec/run_cache.hh"
#include "hw/msr.hh"
#include "program/transform.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

// ---- canonical RunResult fingerprint --------------------------------------

struct Fnv1a
{
    std::uint64_t h = 1469598103934665603ULL;

    void
    byte(std::uint8_t b)
    {
        h ^= b;
        h *= 1099511628211ULL;
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            byte(static_cast<std::uint8_t>(c));
    }
};

void
hashBranch(Fnv1a &f, const BranchRecord &r)
{
    f.u64(r.fromIp);
    f.u64(r.toIp);
    f.byte(static_cast<std::uint8_t>(r.kind));
    f.byte(r.kernel ? 1 : 0);
    f.u64(r.srcBranch);
    f.byte(r.outcome ? 1 : 0);
}

/** Hash every observable field of a RunResult, in a fixed order. */
std::uint64_t
fingerprint(const RunResult &r)
{
    Fnv1a f;
    f.byte(static_cast<std::uint8_t>(r.outcome));
    f.byte(r.failure ? 1 : 0);
    if (r.failure) {
        f.byte(static_cast<std::uint8_t>(r.failure->kind));
        f.u64(r.failure->thread);
        f.u64(r.failure->instrIndex);
        f.u64(r.failure->site);
        f.str(r.failure->message);
    }
    f.u64(r.output.size());
    for (Word w : r.output)
        f.i64(w);
    f.u64(r.profiles.size());
    for (const auto &p : r.profiles) {
        f.byte(static_cast<std::uint8_t>(p.kind));
        f.u64(p.site);
        f.byte(p.successSite ? 1 : 0);
        f.u64(p.thread);
        f.u64(p.step);
        f.u64(p.lbr.size());
        for (const auto &b : p.lbr)
            hashBranch(f, b);
        f.u64(p.lcr.size());
        for (const auto &c : p.lcr) {
            f.u64(c.pc);
            f.byte(static_cast<std::uint8_t>(c.observed));
            f.byte(c.store ? 1 : 0);
        }
    }
    f.u64(r.stats.userInstructions);
    f.u64(r.stats.kernelInstructions);
    f.u64(r.stats.instrumentationInstructions);
    f.u64(r.stats.setupInstructions);
    f.u64(r.stats.branchesRetired);
    f.u64(r.stats.memoryAccesses);
    f.u64(r.stats.contextSwitches);
    for (const auto &kv : r.cbiCounts) {
        f.u64(kv.first.first);
        f.byte(kv.first.second ? 1 : 0);
        f.u64(kv.second);
    }
    for (const auto &kv : r.cbiSiteSamples) {
        f.u64(kv.first);
        f.u64(kv.second);
    }
    for (const auto &kv : r.cciCounts) {
        f.u64(kv.first.first);
        f.byte(kv.first.second ? 1 : 0);
        f.u64(kv.second);
    }
    for (const auto &kv : r.cciSiteSamples) {
        f.u64(kv.first);
        f.u64(kv.second);
    }
    for (const auto &kv : r.pbiSamples) {
        f.u64(kv.first.first);
        f.byte(kv.first.second);
        f.u64(kv.second);
    }
    f.u64(r.btsTrace.size());
    for (const auto &e : r.btsTrace) {
        f.u64(e.thread);
        hashBranch(f, e.record);
    }
    return f.h;
}

// ---- workload configurations ----------------------------------------------

/**
 * The instrumentation configurations each corpus entry is fingerprinted
 * under. Together they exercise every hot-path flavor: bare execution,
 * hook-carrying LBRLOG/LCRLOG profiling, and hook-heavy CBI sampling.
 */
enum class Config : std::uint8_t {
    BareFail, //!< no instrumentation, failing workload, run 0
    BareSucc, //!< no instrumentation, succeeding workload, run 0
    LogFail,  //!< LBRLOG (seq) / LCRLOG (conc), failing workload, run 1
    CbiFail,  //!< CBI sampling (sequential only), failing workload, run 2
};

const char *
configName(Config c)
{
    switch (c) {
      case Config::BareFail: return "bare-fail";
      case Config::BareSucc: return "bare-succ";
      case Config::LogFail:  return "log-fail";
      case Config::CbiFail:  return "cbi-fail";
    }
    return "?";
}

void
applyConfig(BugSpec &bug, Config c)
{
    transform::clear(*bug.program);
    switch (c) {
      case Config::BareFail:
      case Config::BareSucc:
        break;
      case Config::LogFail:
        if (bug.isConcurrent) {
            transform::LcrLogPlan plan;
            plan.lcrConfigMask = lcrConfSpaceConsuming().pack();
            plan.toggling = true;
            transform::applyLcrLog(*bug.program, plan);
        } else {
            transform::LbrLogPlan plan;
            plan.lbrSelectMask = msr::kPaperLbrSelect;
            plan.toggling = true;
            transform::applyLbrLog(*bug.program, plan);
        }
        break;
      case Config::CbiFail:
        transform::applyCbi(*bug.program);
        break;
    }
}

RunResult
runConfigDispatch(BugSpec &bug, Config c, DispatchMode mode)
{
    applyConfig(bug, c);
    const Workload &w =
        c == Config::BareSucc ? bug.succeeding : bug.failing;
    std::uint64_t runIndex = c == Config::LogFail   ? 1
                             : c == Config::CbiFail ? 2
                                                    : 0;
    MachineOptions opts = w.forRun(runIndex);
    opts.dispatch = mode;
    Machine machine(bug.program, opts);
    return machine.run();
}

RunResult
runConfig(BugSpec &bug, Config c)
{
    return runConfigDispatch(bug, c, DispatchMode::Auto);
}

/**
 * Golden fingerprints captured from the seed interpreter
 * (pre-fast-path, commit 0ff56e3) at fixed seeds. Keys are
 * "<bug-id>/<config>".
 */
const std::map<std::string, std::uint64_t> kGolden = {
    // GOLDEN-TABLE-BEGIN
    {"apache1/bare-fail", 0x162fdbe989b4bcefULL},
    {"apache1/bare-succ", 0x010ba4ca64af234fULL},
    {"apache1/log-fail", 0x03c89da845408b16ULL},
    {"apache1/cbi-fail", 0x5a89656ec923f808ULL},
    {"apache2/bare-fail", 0x9d6b6b61913079cdULL},
    {"apache2/bare-succ", 0x96488c39363a4291ULL},
    {"apache2/log-fail", 0x3ff1144e0f2cb47bULL},
    {"apache2/cbi-fail", 0xe1349844f572fa94ULL},
    {"apache3/bare-fail", 0xd5ec9ae3b4d91ee8ULL},
    {"apache3/bare-succ", 0xf67ac55995d56c6fULL},
    {"apache3/log-fail", 0xc4654e64bdd1c4ceULL},
    {"apache3/cbi-fail", 0xc2d308393f56fc54ULL},
    {"cp/bare-fail", 0xa89cb865fcd16a48ULL},
    {"cp/bare-succ", 0x6af42fcb5ec49fd6ULL},
    {"cp/log-fail", 0x3dbb2ca72a26ab03ULL},
    {"cp/cbi-fail", 0x090b6273c6af3a4fULL},
    {"cppcheck1/bare-fail", 0x077c843c9b2e73d9ULL},
    {"cppcheck1/bare-succ", 0x76f99d421c44a1c0ULL},
    {"cppcheck1/log-fail", 0xe6a05f21c7d2a5ddULL},
    {"cppcheck1/cbi-fail", 0xf527204eb8e31886ULL},
    {"cppcheck2/bare-fail", 0x5e1eacbbf7b00660ULL},
    {"cppcheck2/bare-succ", 0xbcd99292b4f53adfULL},
    {"cppcheck2/log-fail", 0x18040347c043bce7ULL},
    {"cppcheck2/cbi-fail", 0x0820f5ff829526f7ULL},
    {"cppcheck3/bare-fail", 0xa6e8c51b8d9f2685ULL},
    {"cppcheck3/bare-succ", 0x3a01ca8e784e4b69ULL},
    {"cppcheck3/log-fail", 0x4bfff7cce81728daULL},
    {"cppcheck3/cbi-fail", 0x1af74e19cce3ebc9ULL},
    {"lighttpd/bare-fail", 0xd5f654f01a7c4af9ULL},
    {"lighttpd/bare-succ", 0xe5a44488828b61fdULL},
    {"lighttpd/log-fail", 0x67cfba46998d2fffULL},
    {"lighttpd/cbi-fail", 0x6ecd964b84a1d3cfULL},
    {"ln/bare-fail", 0xb5ec1b1405c107c4ULL},
    {"ln/bare-succ", 0x88eb5ca8c035894aULL},
    {"ln/log-fail", 0xcfa0892367fa81eaULL},
    {"ln/cbi-fail", 0x131c04a144d5ccc6ULL},
    {"mv/bare-fail", 0x77c9e51569029c95ULL},
    {"mv/bare-succ", 0x68b12b9756b19b21ULL},
    {"mv/log-fail", 0x5c549c462438e1d3ULL},
    {"mv/cbi-fail", 0xaf2684c863e754e7ULL},
    {"paste/bare-fail", 0xe2d1e70a84becef3ULL},
    {"paste/bare-succ", 0xd9eddb528a535dcfULL},
    {"paste/log-fail", 0xfc5d2a7607e0ae07ULL},
    {"paste/cbi-fail", 0x6faec69b2bbce745ULL},
    {"pbzip1/bare-fail", 0x517d56bc6aac3518ULL},
    {"pbzip1/bare-succ", 0xc8af493b5a292c74ULL},
    {"pbzip1/log-fail", 0x9ccc8e2ff790a431ULL},
    {"pbzip1/cbi-fail", 0xe65b860015a5ff67ULL},
    {"pbzip2/bare-fail", 0x75e8eeca5eecd517ULL},
    {"pbzip2/bare-succ", 0x99ceecec2a0563b8ULL},
    {"pbzip2/log-fail", 0x29f93c9aa133da37ULL},
    {"pbzip2/cbi-fail", 0xbe50dfa2476979d2ULL},
    {"rm/bare-fail", 0xfbeb10245145282aULL},
    {"rm/bare-succ", 0xd610348f60db72e4ULL},
    {"rm/log-fail", 0x38cb18bd2826e887ULL},
    {"rm/cbi-fail", 0x0d30b40b26ce2901ULL},
    {"sort/bare-fail", 0x5f56f1817871b4deULL},
    {"sort/bare-succ", 0xc0b92554283c9c14ULL},
    {"sort/log-fail", 0xf1af6285b118607fULL},
    {"sort/cbi-fail", 0x8eaa747aabcfbd0eULL},
    {"squid1/bare-fail", 0xba385f2e9005196aULL},
    {"squid1/bare-succ", 0x2658f69648c0f4a2ULL},
    {"squid1/log-fail", 0xc3e227a94fc3b7dfULL},
    {"squid1/cbi-fail", 0x80d9797e0a7ab7e9ULL},
    {"squid2/bare-fail", 0xe2e95fbaa7858d2eULL},
    {"squid2/bare-succ", 0x600e67380cb125ecULL},
    {"squid2/log-fail", 0x683cbff183a71c7eULL},
    {"squid2/cbi-fail", 0xe580c1aa3b996714ULL},
    {"tac/bare-fail", 0xde41074300e68fafULL},
    {"tac/bare-succ", 0x9dc11aa328cd707eULL},
    {"tac/log-fail", 0xa7b7f9ac801d68f7ULL},
    {"tac/cbi-fail", 0xf5448577745b288bULL},
    {"tar1/bare-fail", 0x107870e35a1c1e26ULL},
    {"tar1/bare-succ", 0x7b712b6d6c848695ULL},
    {"tar1/log-fail", 0xb45f8754877dd0f2ULL},
    {"tar1/cbi-fail", 0xc15c25afa682ce1aULL},
    {"tar2/bare-fail", 0xd6e3e55b29c399b0ULL},
    {"tar2/bare-succ", 0x05336d326016e8d8ULL},
    {"tar2/log-fail", 0xefec00347d2b16e7ULL},
    {"tar2/cbi-fail", 0x61130cef2e36361bULL},
    {"apache4/bare-fail", 0x4401a402b8fe8c0bULL},
    {"apache4/bare-succ", 0x7ff9fb230552ed0fULL},
    {"apache4/log-fail", 0x7c5b8bfb822a558bULL},
    {"apache5/bare-fail", 0xe19c6f8abc9cc3e3ULL},
    {"apache5/bare-succ", 0xe19c6f8abc9cc3e3ULL},
    {"apache5/log-fail", 0x9d2109d9720c2ce3ULL},
    {"cherokee/bare-fail", 0xa295ac21bf12c195ULL},
    {"cherokee/bare-succ", 0xca1947b80f0bd3f3ULL},
    {"cherokee/log-fail", 0xe4a3901916420df4ULL},
    {"fft/bare-fail", 0xd42555dde926ddd1ULL},
    {"fft/bare-succ", 0xa43427fa733c19d8ULL},
    {"fft/log-fail", 0xe8b77c2aa60c6372ULL},
    {"lu/bare-fail", 0xd42555dde926ddd1ULL},
    {"lu/bare-succ", 0xa43427fa733c19d8ULL},
    {"lu/log-fail", 0xe8b77c2aa60c6372ULL},
    {"mozilla-js1/bare-fail", 0xd1e3dd3c599fea01ULL},
    {"mozilla-js1/bare-succ", 0x22904e9c96cdc5b3ULL},
    {"mozilla-js1/log-fail", 0x7e314daf6e2ac719ULL},
    {"mozilla-js2/bare-fail", 0x3ce5cccab9239ddeULL},
    {"mozilla-js2/bare-succ", 0xd1c8d818b969af0aULL},
    {"mozilla-js2/log-fail", 0xbf6944c84f07d0c6ULL},
    {"mozilla-js3/bare-fail", 0xe2112a96bfc06c07ULL},
    {"mozilla-js3/bare-succ", 0xd1c8d818b969af0aULL},
    {"mozilla-js3/log-fail", 0x5ac4726d29d53a05ULL},
    {"mysql1/bare-fail", 0x51934036832f630eULL},
    {"mysql1/bare-succ", 0x51934036832f630eULL},
    {"mysql1/log-fail", 0x5478616bf495be7eULL},
    {"mysql2/bare-fail", 0xab1e6bc5c67dccb2ULL},
    {"mysql2/bare-succ", 0xe716c2e612d22db6ULL},
    {"mysql2/log-fail", 0x9fc339bbb6fb28d8ULL},
    {"pbzip3/bare-fail", 0x484ebca5c8fc73ffULL},
    {"pbzip3/bare-succ", 0x6f38d7ba3038462cULL},
    {"pbzip3/log-fail", 0x0d775fda7513e238ULL},
    {"micro-rwr/bare-fail", 0xe75b908a14bfa078ULL},
    {"micro-rwr/bare-succ", 0x0d670dd9a2410ef2ULL},
    {"micro-rwr/log-fail", 0x66e7d3b87ddaa874ULL},
    {"micro-rww/bare-fail", 0x624cbf9a0ddc63f0ULL},
    {"micro-rww/bare-succ", 0x9e4516ba5a30c4f4ULL},
    {"micro-rww/log-fail", 0x38a2d322fd325df2ULL},
    {"micro-wwr/bare-fail", 0x98206343d24aadf3ULL},
    {"micro-wwr/bare-succ", 0xd418ba641e9f0ef7ULL},
    {"micro-wwr/log-fail", 0x327e1fac754c46f1ULL},
    {"micro-wrw/bare-fail", 0x98206343d24aadf3ULL},
    {"micro-wrw/bare-succ", 0xd418ba641e9f0ef7ULL},
    {"micro-wrw/log-fail", 0x327e1fac754c46f1ULL},
    {"micro-rte/bare-fail", 0x2dc9b1d3db7ec33bULL},
    {"micro-rte/bare-succ", 0x2dc9b1d3db7ec33bULL},
    {"micro-rte/log-fail", 0x43bd7e6d36dade58ULL},
    {"micro-rtl/bare-fail", 0x8f95c401527f995bULL},
    {"micro-rtl/bare-succ", 0x508e2cbade1871a2ULL},
    {"micro-rtl/log-fail", 0x1f064ec5de4aba26ULL},
    {"kirq-race/bare-fail", 0x628557cfa21dbeedULL},
    {"kirq-race/bare-succ", 0x24edfb1c305e88fdULL},
    {"kirq-race/log-fail", 0xa84142f76da8232aULL},
    {"kirq-race/cbi-fail", 0x0d6814f7f4cac340ULL},
    {"kirq-noise/bare-fail", 0xdf4d8149e6a9902eULL},
    {"kirq-noise/bare-succ", 0xd7b4b02586f3d63aULL},
    {"kirq-noise/log-fail", 0x3d27e703981f63c8ULL},
    {"kirq-noise/cbi-fail", 0x8e7d510d8769a1e7ULL},
    {"kirq-atomic/bare-fail", 0x6a5a7c9071fc856fULL},
    {"kirq-atomic/bare-succ", 0x2b3e8c898a8effb1ULL},
    {"kirq-atomic/log-fail", 0x0c76ebf2138c3e34ULL},
    {"kirq-atomic/cbi-fail", 0x01622315eeab90ddULL},
    {"kirq-storm/bare-fail", 0xb97357951c949d56ULL},
    {"kirq-storm/bare-succ", 0xc4d0987fbe187294ULL},
    {"kirq-storm/log-fail", 0xd8bc924672651885ULL},
    {"kirq-storm/cbi-fail", 0xa5ee6bf10ff22161ULL},
    {"kpanic/bare-fail", 0xb57d976b09467a01ULL},
    {"kpanic/bare-succ", 0xf846802d241e6f46ULL},
    {"kpanic/log-fail", 0x9cd1ed206615a681ULL},
    {"kpanic/cbi-fail", 0x4755308b9418f13eULL},
    {"ksys-check/bare-fail", 0xcace546dd8f8440dULL},
    {"ksys-check/bare-succ", 0xa268a40fc8920345ULL},
    {"ksys-check/log-fail", 0xdecec1bafd5555dbULL},
    {"ksys-check/cbi-fail", 0x4bd7db874eec9a12ULL},
    {"ksys-uar/bare-fail", 0xfa5cd11218a8ca58ULL},
    {"ksys-uar/bare-succ", 0x7797d1ff67b22ec9ULL},
    {"ksys-uar/log-fail", 0x3ed836c363396158ULL},
    {"ksysret-leak/bare-fail", 0x13e22db54fc72592ULL},
    {"ksysret-leak/bare-succ", 0x572e53c2acfea535ULL},
    {"ksysret-leak/log-fail", 0x2685264bd1980cbcULL},
    {"ksysret-leak/cbi-fail", 0x10c97bc9ef14e8f2ULL},
    {"kirq-noise-quiet/bare-fail", 0xde19c8dfdcf28fbbULL},
    {"kirq-noise-quiet/bare-succ", 0x791f280d33cf6d0eULL},
    {"kirq-noise-quiet/log-fail", 0x0a4d7af0612d8246ULL},
    {"kirq-noise-quiet/cbi-fail", 0x992ebbede6143861ULL},
    // GOLDEN-TABLE-END
};

std::vector<BugSpec>
fullRegistry()
{
    std::vector<BugSpec> bugs = corpus::allBugs();
    std::vector<BugSpec> micro = corpus::microBugs();
    bugs.insert(bugs.end(), micro.begin(), micro.end());
    // The kernel-mode pack: privilege transitions, seeded interrupt
    // delivery, and ring-0 handler execution all pinned under every
    // configuration and both dispatch modes.
    std::vector<BugSpec> kernel = corpus::kernelBugs();
    bugs.insert(bugs.end(), kernel.begin(), kernel.end());
    bugs.push_back(corpus::bugById("kirq-noise-quiet"));
    return bugs;
}

std::vector<Config>
configsFor(const BugSpec &bug)
{
    std::vector<Config> configs = {Config::BareFail, Config::BareSucc,
                                   Config::LogFail};
    if (!bug.isConcurrent)
        configs.push_back(Config::CbiFail);
    return configs;
}

} // namespace

/**
 * STM_GOLDEN_DUMP=1 mode: print the golden table rows (to paste
 * between the GOLDEN-TABLE markers) instead of asserting.
 */
TEST(GoldenDeterminism, CorpusRunResultsMatchSeedInterpreter)
{
    bool dump = std::getenv("STM_GOLDEN_DUMP") != nullptr;
    for (BugSpec &bug : fullRegistry()) {
        for (Config c : configsFor(bug)) {
            std::string key =
                bug.id + "/" + configName(c);
            std::uint64_t h = fingerprint(runConfig(bug, c));
            if (dump) {
                printf("    {\"%s\", 0x%016llxULL},\n", key.c_str(),
                       static_cast<unsigned long long>(h));
                continue;
            }
            auto it = kGolden.find(key);
            ASSERT_NE(it, kGolden.end())
                << "no golden fingerprint for " << key;
            EXPECT_EQ(h, it->second)
                << "RunResult diverged from the seed interpreter for "
                << key;
        }
    }
}

/**
 * Dispatch mechanism is pure mechanism: for every corpus entry and
 * configuration, the token-threaded (computed-goto) interpreter and
 * the portable switch fallback must produce field-identical
 * RunResults, and both must land on the seed interpreter's golden
 * fingerprint. In a -DSTM_THREADED_DISPATCH=OFF build both requests
 * resolve to the switch loop and the test degenerates to (still
 * useful) golden re-pinning.
 */
TEST(GoldenDeterminism, ThreadedAndSwitchDispatchAreBitIdentical)
{
    for (BugSpec &bug : fullRegistry()) {
        for (Config c : configsFor(bug)) {
            std::string key = bug.id + "/" + configName(c);
            RunResult threaded =
                runConfigDispatch(bug, c, DispatchMode::Threaded);
            RunResult fallback =
                runConfigDispatch(bug, c, DispatchMode::Switch);
            EXPECT_TRUE(threaded == fallback)
                << "threaded and switch dispatch diverged for " << key;
            std::uint64_t h = fingerprint(fallback);
            auto it = kGolden.find(key);
            ASSERT_NE(it, kGolden.end())
                << "no golden fingerprint for " << key;
            EXPECT_EQ(h, it->second)
                << "switch-dispatch RunResult diverged from the seed "
                   "interpreter for "
                << key;
        }
    }
}

/** Re-running the same configuration must be bit-identical. */
TEST(GoldenDeterminism, RepeatedRunsAreBitIdentical)
{
    for (const char *id : {"cp", "sort", "mozilla-js3", "pbzip1"}) {
        BugSpec bug = corpus::bugById(id);
        std::uint64_t first = fingerprint(runConfig(bug, Config::LogFail));
        std::uint64_t second = fingerprint(runConfig(bug, Config::LogFail));
        EXPECT_EQ(first, second) << id;
    }
}

// ---- run-cache transparency over the full corpus --------------------------

namespace
{

/** Restore the no-cache default however a test exits. */
struct GlobalCacheGuard
{
    ~GlobalCacheGuard() { configureRunCache(RunCacheMode::Off); }
};

/** The paper's deployment campaign: LBRA/LCRA at default budgets. */
AutoDiagResult
runCampaign(const BugSpec &bug)
{
    AutoDiagOptions opts;
    opts.absencePredicates = bug.isConcurrent;
    return bug.isConcurrent
               ? runLcra(bug.program, bug.failing, bug.succeeding,
                         opts)
               : runLbra(bug.program, bug.failing, bug.succeeding,
                         opts);
}

void
expectSameDiagnosis(const AutoDiagResult &a, const AutoDiagResult &b,
                    const std::string &id)
{
    EXPECT_EQ(a.diagnosed, b.diagnosed) << id;
    EXPECT_EQ(a.site, b.site) << id;
    EXPECT_EQ(a.failureRunsUsed, b.failureRunsUsed) << id;
    EXPECT_EQ(a.failureAttempts, b.failureAttempts) << id;
    EXPECT_EQ(a.successRunsUsed, b.successRunsUsed) << id;
    EXPECT_EQ(a.successAttempts, b.successAttempts) << id;
    ASSERT_EQ(a.ranking.size(), b.ranking.size()) << id;
    for (std::size_t i = 0; i < a.ranking.size(); ++i) {
        const RankedEvent &x = a.ranking[i];
        const RankedEvent &y = b.ranking[i];
        EXPECT_TRUE(x.event == y.event) << id << " rank " << i;
        EXPECT_EQ(x.absence, y.absence) << id << " rank " << i;
        EXPECT_EQ(x.failureRuns, y.failureRuns) << id << " rank " << i;
        EXPECT_EQ(x.successRuns, y.successRuns) << id << " rank " << i;
        // Exact: both sides compute from identical integer tallies.
        EXPECT_EQ(x.precision, y.precision) << id << " rank " << i;
        EXPECT_EQ(x.recall, y.recall) << id << " rank " << i;
        EXPECT_EQ(x.score, y.score) << id << " rank " << i;
    }
}

} // namespace

/**
 * Memoization must be invisible: for every corpus bug, the ranking a
 * campaign produces with the run cache on is field-identical to the
 * cache-off ranking (which the golden table above already ties to the
 * seed interpreter).
 */
TEST(GoldenDeterminism, CacheOnRankingsMatchCacheOffForAllBugs)
{
    GlobalCacheGuard guard;
    for (const BugSpec &bug : corpus::allBugs()) {
        configureRunCache(RunCacheMode::Off);
        AutoDiagResult off = runCampaign(bug);
        configureRunCache(RunCacheMode::On);
        AutoDiagResult on = runCampaign(bug);
        expectSameDiagnosis(off, on, bug.id);
    }
}

/**
 * Whole-corpus verify-mode audit: run every campaign twice against
 * one verify-mode cache. The second pass hits on every run of the
 * first and re-executes each one, asserting the cached RunResult is
 * bit-identical to a fresh replay (fatal on any divergence).
 */
TEST(GoldenDeterminism, VerifyModeCampaignsOverTheFullCorpus)
{
    GlobalCacheGuard guard;
    configureRunCache(RunCacheMode::Verify);
    for (const BugSpec &bug : corpus::allBugs()) {
        AutoDiagResult first = runCampaign(bug);
        AutoDiagResult second = runCampaign(bug);
        expectSameDiagnosis(first, second, bug.id);
    }
    RunCache *cache = globalRunCache();
    ASSERT_NE(cache, nullptr);
    EXPECT_GE(cache->statsSnapshot().value("verified"), 1u);
}

} // namespace stm
