/**
 * @file
 * Unit tests for the hardware monitoring units: LBR (ring semantics,
 * Table 1 filter masks, enable/disable), LCR (Table 2 event masks,
 * per-thread rings, the two paper configurations), and performance
 * counters (selection, overflow sampling).
 */

#include <gtest/gtest.h>

#include "hw/bts.hh"
#include "hw/lbr.hh"
#include "hw/lcr.hh"
#include "hw/msr.hh"
#include "hw/perf_counter.hh"
#include "hw/pmu.hh"
#include "program/builder.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

BranchRecord
record(BranchKind kind, bool kernel = false)
{
    BranchRecord r;
    r.fromIp = 0x400000;
    r.toIp = 0x400010;
    r.kind = kind;
    r.kernel = kernel;
    return r;
}

// ---- LBR --------------------------------------------------------------------

TEST(Lbr, DisabledByDefault)
{
    LastBranchRecord lbr(16);
    EXPECT_FALSE(lbr.enabled());
    lbr.retire(record(BranchKind::Conditional));
    EXPECT_EQ(lbr.size(), 0u);
}

TEST(Lbr, EnableViaDebugCtlValue)
{
    LastBranchRecord lbr(16);
    lbr.writeDebugCtl(msr::kDebugCtlEnableLbr);
    EXPECT_TRUE(lbr.enabled());
    lbr.retire(record(BranchKind::Conditional));
    EXPECT_EQ(lbr.size(), 1u);
    lbr.writeDebugCtl(msr::kDebugCtlDisableLbr);
    lbr.retire(record(BranchKind::Conditional));
    EXPECT_EQ(lbr.size(), 1u); // frozen while disabled
}

TEST(Lbr, CapacityMatchesConstruction)
{
    for (std::size_t n : {4u, 8u, 16u}) {
        LastBranchRecord lbr(n);
        lbr.writeDebugCtl(msr::kDebugCtlEnableLbr);
        for (int i = 0; i < 50; ++i)
            lbr.retire(record(BranchKind::Conditional));
        EXPECT_EQ(lbr.size(), n);
    }
}

TEST(Lbr, NewestFirstSnapshot)
{
    LastBranchRecord lbr(4);
    lbr.writeDebugCtl(msr::kDebugCtlEnableLbr);
    for (Addr ip = 1; ip <= 6; ++ip) {
        BranchRecord r = record(BranchKind::Conditional);
        r.fromIp = ip;
        lbr.retire(r);
    }
    auto snap = lbr.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap[0].fromIp, 6u);
    EXPECT_EQ(snap[3].fromIp, 3u);
}

TEST(Lbr, ClearEmptiesTheRing)
{
    LastBranchRecord lbr(4);
    lbr.writeDebugCtl(msr::kDebugCtlEnableLbr);
    lbr.retire(record(BranchKind::Conditional));
    lbr.clear();
    EXPECT_EQ(lbr.size(), 0u);
}

TEST(Lbr, PaperMaskKeepsCondAndRelJumpOnly)
{
    LastBranchRecord lbr(16);
    lbr.writeSelect(msr::kPaperLbrSelect);
    lbr.writeDebugCtl(msr::kDebugCtlEnableLbr);
    lbr.retire(record(BranchKind::Conditional));
    lbr.retire(record(BranchKind::NearRelativeJump));
    lbr.retire(record(BranchKind::NearRelativeCall));
    lbr.retire(record(BranchKind::NearIndirectCall));
    lbr.retire(record(BranchKind::NearReturn));
    lbr.retire(record(BranchKind::NearIndirectJump));
    lbr.retire(record(BranchKind::FarBranch));
    lbr.retire(record(BranchKind::Conditional, /*kernel=*/true));
    EXPECT_EQ(lbr.size(), 2u);
}

/** Table 1 filter sweep: each set bit suppresses exactly its class. */
struct FilterCase
{
    std::uint64_t mask;
    BranchKind kind;
    bool kernel;
    bool suppressed;
};

class LbrFilterSweep : public ::testing::TestWithParam<FilterCase>
{
};

TEST_P(LbrFilterSweep, MaskBitSuppressesItsClass)
{
    const FilterCase &c = GetParam();
    LastBranchRecord lbr(16);
    lbr.writeSelect(c.mask);
    lbr.writeDebugCtl(msr::kDebugCtlEnableLbr);
    lbr.retire(record(c.kind, c.kernel));
    EXPECT_EQ(lbr.size(), c.suppressed ? 0u : 1u);
    EXPECT_EQ(lbr.filteredOut(record(c.kind, c.kernel)),
              c.suppressed);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, LbrFilterSweep,
    ::testing::Values(
        FilterCase{msr::kLbrFilterRing0, BranchKind::Conditional,
                   true, true},
        FilterCase{msr::kLbrFilterRing0, BranchKind::Conditional,
                   false, false},
        FilterCase{msr::kLbrFilterOtherRings,
                   BranchKind::Conditional, false, true},
        FilterCase{msr::kLbrFilterConditional,
                   BranchKind::Conditional, false, true},
        FilterCase{msr::kLbrFilterConditional,
                   BranchKind::NearRelativeJump, false, false},
        FilterCase{msr::kLbrFilterNearRelCall,
                   BranchKind::NearRelativeCall, false, true},
        FilterCase{msr::kLbrFilterNearIndCall,
                   BranchKind::NearIndirectCall, false, true},
        FilterCase{msr::kLbrFilterNearRet, BranchKind::NearReturn,
                   false, true},
        FilterCase{msr::kLbrFilterNearIndJmp,
                   BranchKind::NearIndirectJump, false, true},
        FilterCase{msr::kLbrFilterNearRelJmp,
                   BranchKind::NearRelativeJump, false, true},
        FilterCase{msr::kLbrFilterFar, BranchKind::FarBranch, false,
                   true},
        FilterCase{0, BranchKind::FarBranch, false, false}));

TEST(Lbr, Table1Encodings)
{
    EXPECT_EQ(msr::kIa32DebugCtl, 0x1d9u);
    EXPECT_EQ(msr::kLbrSelect, 0x1c8u);
    EXPECT_EQ(msr::kDebugCtlEnableLbr, 0x801u);
    EXPECT_EQ(msr::kLbrFilterRing0, 0x1u);
    EXPECT_EQ(msr::kLbrFilterConditional, 0x4u);
    EXPECT_EQ(msr::kLbrFilterNearRelCall, 0x8u);
    EXPECT_EQ(msr::kLbrFilterNearIndCall, 0x10u);
    EXPECT_EQ(msr::kLbrFilterNearRet, 0x20u);
    EXPECT_EQ(msr::kLbrFilterNearIndJmp, 0x40u);
    EXPECT_EQ(msr::kLbrFilterNearRelJmp, 0x80u);
    EXPECT_EQ(msr::kLbrFilterFar, 0x100u);
    // The paper's starred rows.
    EXPECT_EQ(msr::kPaperLbrSelect, 0x179u);
}

// ---- LCR --------------------------------------------------------------------

CoherenceEvent
event(MesiState state, bool store = false, bool kernel = false)
{
    CoherenceEvent e;
    e.pc = 0x400100;
    e.observed = state;
    e.store = store;
    e.kernel = kernel;
    return e;
}

TEST(LcrConfig, PackUnpackRoundTrip)
{
    for (std::uint8_t load = 0; load < 16; ++load) {
        for (std::uint8_t st = 0; st < 16; ++st) {
            LcrConfig config;
            config.loadMask = load;
            config.storeMask = st;
            config.filterKernel = (load & 1) != 0;
            config.filterUser = (st & 1) != 0;
            EXPECT_EQ(LcrConfig::unpack(config.pack()), config);
        }
    }
}

TEST(LcrConfig, PaperConfigurations)
{
    LcrConfig conf2 = lcrConfSpaceConsuming();
    EXPECT_TRUE(conf2.matches(event(MesiState::Invalid)));
    EXPECT_TRUE(conf2.matches(event(MesiState::Exclusive)));
    EXPECT_TRUE(conf2.matches(event(MesiState::Invalid, true)));
    EXPECT_FALSE(conf2.matches(event(MesiState::Shared)));
    EXPECT_FALSE(conf2.matches(event(MesiState::Modified)));
    EXPECT_FALSE(conf2.matches(event(MesiState::Exclusive, true)));

    LcrConfig conf1 = lcrConfSpaceSaving();
    EXPECT_TRUE(conf1.matches(event(MesiState::Invalid)));
    EXPECT_TRUE(conf1.matches(event(MesiState::Shared)));
    EXPECT_TRUE(conf1.matches(event(MesiState::Invalid, true)));
    EXPECT_FALSE(conf1.matches(event(MesiState::Exclusive)));
}

TEST(LcrConfig, KernelFiltering)
{
    LcrConfig config = lcrConfSpaceConsuming();
    EXPECT_FALSE(
        config.matches(event(MesiState::Invalid, false, true)));
    config.filterKernel = false;
    EXPECT_TRUE(
        config.matches(event(MesiState::Invalid, false, true)));
}

TEST(LcrDomain, RecordsOnlyWhenEnabled)
{
    LcrDomain lcr(16);
    lcr.configure(lcrConfSpaceConsuming());
    lcr.retire(0, event(MesiState::Invalid));
    EXPECT_TRUE(lcr.snapshot(0).empty());
    lcr.enable();
    lcr.retire(0, event(MesiState::Invalid));
    EXPECT_EQ(lcr.snapshot(0).size(), 1u);
    lcr.disable();
    lcr.retire(0, event(MesiState::Invalid));
    EXPECT_EQ(lcr.snapshot(0).size(), 1u); // frozen
}

TEST(LcrDomain, PerThreadRingsAreIndependent)
{
    LcrDomain lcr(16);
    lcr.configure(lcrConfSpaceConsuming());
    lcr.enable();
    lcr.retire(0, event(MesiState::Invalid));
    lcr.retire(1, event(MesiState::Exclusive));
    ASSERT_EQ(lcr.snapshot(0).size(), 1u);
    ASSERT_EQ(lcr.snapshot(1).size(), 1u);
    EXPECT_EQ(lcr.snapshot(0)[0].observed, MesiState::Invalid);
    EXPECT_EQ(lcr.snapshot(1)[0].observed, MesiState::Exclusive);
    EXPECT_TRUE(lcr.snapshot(7).empty());
}

TEST(LcrDomain, CapacityBoundsEachThread)
{
    LcrDomain lcr(4);
    lcr.configure(lcrConfSpaceConsuming());
    lcr.enable();
    for (int i = 0; i < 10; ++i)
        lcr.retire(0, event(MesiState::Invalid));
    EXPECT_EQ(lcr.snapshot(0).size(), 4u);
}

TEST(LcrDomain, ConfigurationFiltersEvents)
{
    LcrDomain lcr(16);
    lcr.configure(lcrConfSpaceConsuming());
    lcr.enable();
    lcr.retire(0, event(MesiState::Modified));         // filtered
    lcr.retire(0, event(MesiState::Shared));           // filtered
    lcr.retire(0, event(MesiState::Exclusive, true));  // filtered
    lcr.retire(0, event(MesiState::Exclusive, false)); // recorded
    EXPECT_EQ(lcr.snapshot(0).size(), 1u);
}

TEST(LcrDomain, CleanDropsAllThreads)
{
    LcrDomain lcr(16);
    lcr.configure(lcrConfSpaceConsuming());
    lcr.enable();
    lcr.retire(0, event(MesiState::Invalid));
    lcr.retire(1, event(MesiState::Invalid));
    lcr.clean();
    EXPECT_TRUE(lcr.snapshot(0).empty());
    EXPECT_TRUE(lcr.snapshot(1).empty());
}

TEST(LcrDomain, RecordsPcNotAddress)
{
    // Footnote 2: memory addresses are not recorded (privacy).
    LcrDomain lcr(16);
    lcr.configure(lcrConfSpaceConsuming());
    lcr.enable();
    lcr.retire(0, event(MesiState::Invalid));
    LcrRecord rec = lcr.snapshot(0)[0];
    EXPECT_EQ(rec.pc, 0x400100u);
    // LcrRecord has no address field by design; this is a
    // compile-time property, asserted by construction.
}

// ---- performance counters -------------------------------------------------

TEST(PerfCounter, CountsMatchingEventsOnly)
{
    PerfCounter counter;
    counter.configure(msr::kEventLoad, msr::kUmaskInvalid, false,
                      true);
    counter.enable();
    counter.observe(event(MesiState::Invalid));        // +1
    counter.observe(event(MesiState::Exclusive));      // no
    counter.observe(event(MesiState::Invalid, true));  // store: no
    counter.observe(event(MesiState::Invalid, false, true)); // kernel
    EXPECT_EQ(counter.count(), 1u);
}

TEST(PerfCounter, DisabledCountsNothing)
{
    PerfCounter counter;
    counter.configure(msr::kEventLoad, msr::kUmaskInvalid, false,
                      true);
    counter.observe(event(MesiState::Invalid));
    EXPECT_EQ(counter.count(), 0u);
}

TEST(PerfCounter, UnitMaskCombinations)
{
    PerfCounter counter;
    counter.configure(msr::kEventLoad,
                      msr::kUmaskInvalid | msr::kUmaskExclusive,
                      false, true);
    counter.enable();
    counter.observe(event(MesiState::Invalid));
    counter.observe(event(MesiState::Exclusive));
    counter.observe(event(MesiState::Shared));
    EXPECT_EQ(counter.count(), 2u);
}

TEST(PerfCounter, OverflowSamplingFiresAboutEveryPeriod)
{
    PerfCounter counter;
    counter.configure(msr::kEventLoad, msr::kUmaskInvalid, false,
                      true);
    int interrupts = 0;
    counter.setSampling(3, [&](const CoherenceEvent &) {
        ++interrupts;
    });
    counter.enable();
    for (int i = 0; i < 100; ++i)
        counter.observe(event(MesiState::Invalid));
    // The period is jittered into [1, 4] around 3 (PEBS-style
    // randomization): roughly 25-70 interrupts over 100 events.
    EXPECT_GE(interrupts, 25);
    EXPECT_LE(interrupts, 70);
    EXPECT_EQ(counter.count(), 100u);
}

TEST(PerfCounter, PeriodOneSamplesEveryEvent)
{
    PerfCounter counter;
    counter.configure(msr::kEventLoad, msr::kUmaskInvalid, false,
                      true);
    int interrupts = 0;
    counter.setSampling(1, [&](const CoherenceEvent &) {
        ++interrupts;
    });
    counter.enable();
    for (int i = 0; i < 10; ++i)
        counter.observe(event(MesiState::Invalid));
    EXPECT_EQ(interrupts, 10);
}

TEST(Pmu, FansAccessesToAllCounters)
{
    Pmu pmu(16);
    pmu.counter(0).configure(msr::kEventLoad, msr::kUmaskInvalid,
                             false, true);
    pmu.counter(0).enable();
    pmu.counter(1).configure(msr::kEventStore, msr::kUmaskInvalid,
                             false, true);
    pmu.counter(1).enable();
    pmu.observeAccess(event(MesiState::Invalid, false));
    pmu.observeAccess(event(MesiState::Invalid, true));
    EXPECT_EQ(pmu.counter(0).count(), 1u);
    EXPECT_EQ(pmu.counter(1).count(), 1u);
}

TEST(Pmu, RetireBranchFeedsLbr)
{
    Pmu pmu(8);
    pmu.lbr().writeDebugCtl(msr::kDebugCtlEnableLbr);
    pmu.retireBranch(record(BranchKind::Conditional));
    EXPECT_EQ(pmu.lbr().size(), 1u);
}

// ---- BTS --------------------------------------------------------------------

TEST(Bts, DisabledRecordsNothingAndCostsNothing)
{
    BranchTraceStore bts;
    EXPECT_EQ(bts.retire(0, record(BranchKind::Conditional)), 0u);
    EXPECT_EQ(bts.size(), 0u);
}

TEST(Bts, EnabledAppendsWithoutEviction)
{
    BranchTraceStore bts;
    bts.enable();
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(bts.retire(0, record(BranchKind::Conditional)),
                  BranchTraceStore::kPerRecordCost);
    }
    EXPECT_EQ(bts.size(), 1000u); // no 16-entry horizon
}

TEST(Bts, SharesLbrClassFiltering)
{
    BranchTraceStore bts;
    bts.enable();
    bts.writeSelect(msr::kPaperLbrSelect);
    EXPECT_EQ(bts.retire(0, record(BranchKind::NearReturn)), 0u);
    EXPECT_GT(bts.retire(0, record(BranchKind::Conditional)), 0u);
    EXPECT_EQ(bts.size(), 1u);
}

TEST(Bts, PositionOfBranchIsPerThreadFromTheTail)
{
    BranchTraceStore bts;
    bts.enable();
    BranchRecord a = record(BranchKind::Conditional);
    a.srcBranch = 1;
    BranchRecord other = record(BranchKind::Conditional);
    other.srcBranch = 2;
    bts.retire(0, a);
    bts.retire(1, other); // another thread: invisible to thread 0
    bts.retire(0, other);
    EXPECT_EQ(bts.positionOfBranch(0, 1), 2u);
    EXPECT_EQ(bts.positionOfBranch(0, 2), 1u);
    EXPECT_EQ(bts.positionOfBranch(1, 2), 1u);
    EXPECT_EQ(bts.positionOfBranch(0, 9), 0u);
}

// ---- exhaustive LBR_SELECT sweep -------------------------------------------

namespace
{

/**
 * A program that retires every branch class in both rings: user and
 * kernel conditionals, relative jumps, relative and indirect calls,
 * returns, indirect jumps, and the far branches of the syscall
 * boundary. The sweep below checks the machine's LBR against the
 * naive reference filter on exactly this stream.
 */
ProgramPtr
kernelNoiseProgram()
{
    using namespace regs;
    ProgramBuilder b("lbr-select-sweep");

    b.func("main");
    b.movi(r4, 0);
    b.movi(r5, 4);
    b.beginWhile(Cond::Lt, r4, r5, "user loop");
    {
        b.movi(r6, 2);
        // Both outcomes across the four iterations.
        b.beginIf(Cond::Lt, r4, r6, "user conditional");
        b.endIf();
        b.call("leaf");
        b.leaFunction(r7, "leaf");
        b.icall(r7);
        b.sysEnter("sys_noise");
        b.addi(r4, r4, 1);
    }
    b.endWhile();
    b.leaFunction(r8, "finish");
    b.ijmp(r8);

    b.func("leaf");
    b.ret();

    b.func("finish");
    b.halt();

    b.kernelMode(true);
    b.func("sys_noise");
    b.movi(r16, 0);
    b.movi(r17, 3);
    b.beginWhile(Cond::Lt, r16, r17, "kernel loop");
    {
        b.movi(r18, 1);
        b.beginIf(Cond::Lt, r16, r18, "kernel conditional");
        b.endIf();
        b.addi(r16, r16, 1);
    }
    b.endWhile();
    b.call("kleaf");
    b.leaFunction(r19, "kleaf");
    b.icall(r19);
    b.leaFunction(r20, "kfinish");
    b.ijmp(r20);

    b.func("kleaf");
    b.ret();

    b.func("kfinish");
    b.sysRet();
    b.kernelMode(false);

    return b.build();
}

} // namespace

/**
 * Property test over the full LBR_SELECT space: for each of the 512
 * combinations of the nine Table 1 filter bits, the machine's
 * 16-entry LBR at end of run must equal the naive reference — filter
 * the complete retired-branch stream (captured once via BTS with a
 * record-everything select) through lbrClassFilteredOut and keep the
 * newest 16.
 */
TEST(Lbr, SelectSweepMatchesNaiveFilterOverKernelNoise)
{
    // Reference stream: BTS with select 0 appends every retired
    // taken branch in order, kernel-stamped exactly as the LBR runs
    // will see them.
    ProgramPtr ref = kernelNoiseProgram();
    ref->instrumentation.btsEnabled = true;
    ref->instrumentation.btsSelectMask = 0;
    RunResult refRun = Machine(ref).run();
    ASSERT_EQ(refRun.outcome, RunOutcome::Completed);

    // The stream must actually exercise every (class, ring) pair, or
    // the sweep proves less than it claims.
    auto seen = [&](BranchKind k, bool kernel) {
        for (const auto &e : refRun.btsTrace)
            if (e.record.kind == k && e.record.kernel == kernel)
                return true;
        return false;
    };
    for (BranchKind k :
         {BranchKind::Conditional, BranchKind::NearRelativeJump,
          BranchKind::NearRelativeCall, BranchKind::NearIndirectCall,
          BranchKind::NearReturn, BranchKind::NearIndirectJump,
          BranchKind::FarBranch}) {
        EXPECT_TRUE(seen(k, false)) << static_cast<int>(k);
        EXPECT_TRUE(seen(k, true)) << static_cast<int>(k);
    }

    for (std::uint64_t select = 0; select < 512; ++select) {
        ProgramPtr p = kernelNoiseProgram();
        p->instrumentation.enableLbrAtMain = true;
        p->instrumentation.lbrSelectMask = select;
        std::uint32_t haltIdx = 0;
        for (std::uint32_t i = 0; i < p->code.size(); ++i)
            if (p->code[i].op == Opcode::Halt)
                haltIdx = i;
        p->instrumentation.before[haltIdx].push_back(
            Hook{HookAction::ProfileLbr, 0, false});

        RunResult run = Machine(p).run();
        ASSERT_EQ(run.outcome, RunOutcome::Completed);
        ASSERT_EQ(run.profiles.size(), 1u) << "select=" << select;

        std::vector<BranchRecord> kept;
        for (const auto &e : refRun.btsTrace)
            if (!lbrClassFilteredOut(select, e.record))
                kept.push_back(e.record);
        std::vector<BranchRecord> expect; // newest first, depth 16
        for (auto it = kept.rbegin();
             it != kept.rend() && expect.size() < 16; ++it)
            expect.push_back(*it);

        EXPECT_EQ(run.profiles[0].lbr, expect)
            << "select=" << select;
    }
}

} // namespace
} // namespace stm
