/**
 * @file
 * End-to-end integration tests: whole diagnosis pipelines over the
 * corpus, cross-cutting properties (determinism of full campaigns,
 * LBR-depth effects, multiple failure sites), and the headline
 * claims of the paper as executable assertions.
 */

#include <gtest/gtest.h>

#include "corpus/registry.hh"
#include "diag/auto_diag.hh"
#include "diag/log_enhance.hh"
#include "program/builder.hh"
#include "program/transform.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

TEST(Integration, LbrlogCapturesAScoredBranchForAll20)
{
    int captured = 0;
    for (BugSpec &bug : corpus::sequentialBugs()) {
        LbrLogReport report = runLbrLog(bug.program, bug.failing);
        ASSERT_TRUE(report.failed) << bug.id;
        std::size_t p = 0;
        if (bug.truth.rootCauseBranch != kNoSourceBranch)
            p = report.positionOfBranch(bug.truth.rootCauseBranch);
        if (p == 0 && bug.truth.relatedBranch != kNoSourceBranch)
            p = report.positionOfBranch(bug.truth.relatedBranch);
        captured += p != 0 ? 1 : 0;
    }
    EXPECT_EQ(captured, 20);
}

TEST(Integration, LbraRanksTheScoredBranchFirstForAll20)
{
    for (BugSpec &bug : corpus::sequentialBugs()) {
        AutoDiagResult result =
            runLbra(bug.program, bug.failing, bug.succeeding);
        ASSERT_TRUE(result.diagnosed) << bug.id;
        std::size_t p = 0;
        if (bug.truth.rootCauseBranch != kNoSourceBranch) {
            p = result.positionOf(EventKey::sourceBranch(
                bug.truth.rootCauseBranch,
                bug.truth.rootCauseOutcome));
        }
        if (p == 0 && bug.truth.relatedBranch != kNoSourceBranch) {
            p = result.positionOf(EventKey::sourceBranch(
                bug.truth.relatedBranch, bug.truth.relatedOutcome));
        }
        EXPECT_GE(p, 1u) << bug.id;
        EXPECT_LE(p, 2u) << bug.id;
    }
}

TEST(Integration, LcraDiagnosesSevenOfElevenAsInThePaper)
{
    int diagnosed = 0;
    for (BugSpec &bug : corpus::concurrencyBugs()) {
        AutoDiagOptions opts;
        opts.absencePredicates = true;
        if (bug.truth.fpeUnreachable)
            opts.maxAttempts = 1500; // expected misses: bound work
        AutoDiagResult result =
            runLcra(bug.program, bug.failing, bug.succeeding, opts);
        if (!result.diagnosed || bug.truth.fpeUnreachable)
            continue;
        EventKey fpe = EventKey::coherence(
            layout::codeAddr(bug.truth.fpeInstr),
            bug.truth.fpeState, bug.truth.fpeStore);
        if (result.positionOf(fpe) == 1)
            ++diagnosed;
    }
    EXPECT_EQ(diagnosed, 7);
}

TEST(Integration, WholeDiagnosisCampaignIsDeterministic)
{
    BugSpec bug1 = corpus::bugById("mozilla-js3");
    AutoDiagOptions opts;
    opts.absencePredicates = true;
    AutoDiagResult a =
        runLcra(bug1.program, bug1.failing, bug1.succeeding, opts);
    BugSpec bug2 = corpus::bugById("mozilla-js3");
    AutoDiagResult b =
        runLcra(bug2.program, bug2.failing, bug2.succeeding, opts);
    ASSERT_TRUE(a.diagnosed);
    ASSERT_TRUE(b.diagnosed);
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t i = 0; i < a.ranking.size(); ++i) {
        EXPECT_EQ(a.ranking[i].event, b.ranking[i].event);
        EXPECT_DOUBLE_EQ(a.ranking[i].score, b.ranking[i].score);
    }
    EXPECT_EQ(a.failureAttempts, b.failureAttempts);
}

TEST(Integration, DeeperLbrCapturesMore)
{
    // The ln root cause needs more than 16 entries (the paper's
    // Figure 9b discussion: captured with ~4 more entries).
    BugSpec bug = corpus::bugById("ln");
    LogEnhanceOptions deep;
    deep.lbrEntries = 32;
    LbrLogReport report = runLbrLog(bug.program, bug.failing, deep);
    ASSERT_TRUE(report.failed);
    EXPECT_GT(report.positionOfBranch(bug.truth.rootCauseBranch),
              0u);

    LogEnhanceOptions narrow;
    narrow.lbrEntries = 16;
    LbrLogReport report16 =
        runLbrLog(bug.program, bug.failing, narrow);
    EXPECT_EQ(report16.positionOfBranch(bug.truth.rootCauseBranch),
              0u);
}

TEST(Integration, MultipleFailureSitesAreSeparated)
{
    // Two different inputs fail at two different sites; LBRA pins
    // one site per campaign and ignores the other failures
    // (Section 5.3, "Multiple failures").
    ProgramBuilder b("multi");
    b.global("x", 1, {0});
    b.func("main");
    b.loadg(r1, "x");
    b.movi(r2, 1);
    SourceBranchId brA = b.beginIf(Cond::Eq, r1, r2, "x == 1");
    b.logError("failure A");
    b.endIf();
    b.movi(r2, 2);
    SourceBranchId brB = b.beginIf(Cond::Eq, r1, r2, "x == 2");
    b.logError("failure B");
    b.endIf();
    b.halt();
    ProgramPtr prog = b.build();

    // A failing workload that alternates between the two bugs: the
    // first observed failure (x == 1) pins the site.
    Workload failing;
    failing.base.globalOverrides = {{"x", {1}}};
    Workload succeeding;
    succeeding.base.globalOverrides = {{"x", {0}}};

    AutoDiagResult result = runLbra(prog, failing, succeeding);
    ASSERT_TRUE(result.diagnosed);
    EXPECT_EQ(result.positionOf(EventKey::sourceBranch(brA, true)),
              1u);
    EXPECT_EQ(result.positionOf(EventKey::sourceBranch(brB, true)),
              0u); // never observed in any profile... or ranked low
}

TEST(Integration, HangDiagnosisCapturesTheLoop)
{
    BugSpec bug = corpus::bugById("paste");
    LbrLogReport report = runLbrLog(bug.program, bug.failing);
    ASSERT_TRUE(report.failed);
    EXPECT_EQ(report.run.outcome, RunOutcome::StepLimit);
    EXPECT_GT(report.positionOfBranch(bug.truth.rootCauseBranch),
              0u);
}

TEST(Integration, TogglingTradeoffAcrossTheCorpus)
{
    // Without toggling, at least 4 of the 20 sequential failures
    // lose their scored branch (paper: 5), and none gains one.
    int lost = 0;
    for (BugSpec &bug : corpus::sequentialBugs()) {
        LogEnhanceOptions tog;
        LbrLogReport with =
            runLbrLog(bug.program, bug.failing, tog);
        LogEnhanceOptions noTog;
        noTog.toggling = false;
        LbrLogReport without =
            runLbrLog(bug.program, bug.failing, noTog);
        auto captured = [&](const LbrLogReport &r) {
            std::size_t p = 0;
            if (bug.truth.rootCauseBranch != kNoSourceBranch)
                p = r.positionOfBranch(bug.truth.rootCauseBranch);
            if (p == 0 &&
                bug.truth.relatedBranch != kNoSourceBranch)
                p = r.positionOfBranch(bug.truth.relatedBranch);
            return p != 0;
        };
        if (captured(with) && !captured(without))
            ++lost;
        EXPECT_FALSE(!captured(with) && captured(without))
            << bug.id;
    }
    EXPECT_GE(lost, 4);
}

TEST(Integration, ProfilesNeverContainDataAddresses)
{
    // Privacy: LBR holds instruction addresses, LCR holds pcs and
    // states — no data addresses or values anywhere in a profile.
    BugSpec bug = corpus::bugById("mozilla-js3");
    LcrLogReport lcr = runLcrLog(bug.program, bug.failing);
    ASSERT_TRUE(lcr.failed);
    for (const auto &rec : lcr.record) {
        EXPECT_LT(rec.pc, layout::kGlobalBase)
            << "LCR pc must be a code address";
    }
    LbrLogReport lbr = runLbrLog(bug.program, bug.failing);
    for (const auto &rec : lbr.record) {
        EXPECT_LT(rec.fromIp, layout::kGlobalBase);
    }
}

TEST(Integration, BtsAlwaysCapturesButCostsTooMuch)
{
    // Section 2.1: BTS holds the whole history (so even ln's deep
    // root cause is present) but its per-branch memory writes cost
    // production-scale overhead.
    BugSpec bug = corpus::bugById("ln");
    transform::clear(*bug.program);
    transform::applyBts(*bug.program, msr::kPaperLbrSelect);

    Machine failing(bug.program, bug.failing.forRun(0));
    RunResult failRun = failing.run();
    ASSERT_TRUE(bug.failing.isFailure(failRun));
    bool found = false;
    for (const auto &entry : failRun.btsTrace) {
        found = found ||
                entry.record.srcBranch == bug.truth.rootCauseBranch;
    }
    EXPECT_TRUE(found); // beyond LBR's 16-entry horizon

    Machine production(bug.program, bug.succeeding.forRun(0));
    RunResult prodRun = production.run();
    EXPECT_GT(prodRun.stats.steadyOverhead(), 0.20);
    transform::clear(*bug.program);
}

TEST(Integration, NoiseRobustRankingUnderTinyCache)
{
    // Section 5.3: eviction-induced invalid states appear in success
    // and failure runs alike; the ranking filters them. A 512-byte
    // L1 forces evictions and LCRA still ranks the FPE first.
    BugSpec bug = corpus::bugById("mysql2");
    CacheGeometry geo;
    geo.sizeBytes = 512;
    geo.assoc = 2;
    geo.blockBytes = 64;
    bug.failing.base.cache = geo;
    bug.succeeding.base.cache = geo;
    AutoDiagOptions opts;
    opts.absencePredicates = true;
    AutoDiagResult result =
        runLcra(bug.program, bug.failing, bug.succeeding, opts);
    ASSERT_TRUE(result.diagnosed);
    EXPECT_EQ(result.positionOf(EventKey::coherence(
                  layout::codeAddr(bug.truth.fpeInstr),
                  bug.truth.fpeState, bug.truth.fpeStore)),
              1u);
}

} // namespace
} // namespace stm
