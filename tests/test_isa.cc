/**
 * @file
 * Unit tests for the ISA layer: opcode taxonomy, condition
 * evaluation, and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/disassembler.hh"
#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "isa/types.hh"

namespace stm
{
namespace
{

TEST(Opcode, BranchKindTaxonomy)
{
    EXPECT_EQ(branchKindOf(Opcode::Br), BranchKind::Conditional);
    EXPECT_EQ(branchKindOf(Opcode::Jmp),
              BranchKind::NearRelativeJump);
    EXPECT_EQ(branchKindOf(Opcode::IJmp),
              BranchKind::NearIndirectJump);
    EXPECT_EQ(branchKindOf(Opcode::Call),
              BranchKind::NearRelativeCall);
    EXPECT_EQ(branchKindOf(Opcode::ICall),
              BranchKind::NearIndirectCall);
    EXPECT_EQ(branchKindOf(Opcode::Ret), BranchKind::NearReturn);
    EXPECT_EQ(branchKindOf(Opcode::Syscall), BranchKind::FarBranch);
    EXPECT_EQ(branchKindOf(Opcode::Add), BranchKind::None);
    EXPECT_EQ(branchKindOf(Opcode::Load), BranchKind::None);
}

TEST(Opcode, IsBranchOpcodeMatchesTaxonomy)
{
    EXPECT_TRUE(isBranchOpcode(Opcode::Br));
    EXPECT_TRUE(isBranchOpcode(Opcode::Ret));
    EXPECT_FALSE(isBranchOpcode(Opcode::Store));
    EXPECT_FALSE(isBranchOpcode(Opcode::Halt));
}

TEST(Opcode, NamesAreStable)
{
    EXPECT_EQ(opcodeName(Opcode::Br), "br");
    EXPECT_EQ(opcodeName(Opcode::LogError), "log_error");
    EXPECT_EQ(condName(Cond::Le), "le");
    EXPECT_EQ(branchKindName(BranchKind::FarBranch), "far");
    EXPECT_EQ(libFnName(LibFn::Memmove), "memmove");
    EXPECT_EQ(syscallName(SyscallNo::ProfileLbr),
              "DRIVER_PROFILE_LBR");
}

/** Exhaustive condition-evaluation sweep. */
struct CondCase
{
    Cond cond;
    std::int64_t a, b;
    bool expected;
};

class CondSweep : public ::testing::TestWithParam<CondCase>
{
};

TEST_P(CondSweep, Evaluates)
{
    const CondCase &c = GetParam();
    EXPECT_EQ(evalCond(c.cond, c.a, c.b), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllConds, CondSweep,
    ::testing::Values(CondCase{Cond::Eq, 3, 3, true},
                      CondCase{Cond::Eq, 3, 4, false},
                      CondCase{Cond::Ne, 3, 4, true},
                      CondCase{Cond::Ne, -1, -1, false},
                      CondCase{Cond::Lt, -2, -1, true},
                      CondCase{Cond::Lt, 5, 5, false},
                      CondCase{Cond::Le, 5, 5, true},
                      CondCase{Cond::Le, 6, 5, false},
                      CondCase{Cond::Gt, 6, 5, true},
                      CondCase{Cond::Gt, 5, 6, false},
                      CondCase{Cond::Ge, 5, 5, true},
                      CondCase{Cond::Ge, 4, 5, false}));

class NegateSweep : public ::testing::TestWithParam<Cond>
{
};

TEST_P(NegateSweep, NegationIsComplementary)
{
    Cond c = GetParam();
    Cond n = negateCond(c);
    // Over a grid of operand pairs, negation flips the outcome.
    for (std::int64_t a = -2; a <= 2; ++a) {
        for (std::int64_t b = -2; b <= 2; ++b)
            EXPECT_NE(evalCond(c, a, b), evalCond(n, a, b));
    }
    EXPECT_EQ(negateCond(n), c);
}

INSTANTIATE_TEST_SUITE_P(AllConds, NegateSweep,
                         ::testing::Values(Cond::Eq, Cond::Ne,
                                           Cond::Lt, Cond::Le,
                                           Cond::Gt, Cond::Ge));

TEST(Layout, CodeAddressesAreDisjointFromData)
{
    EXPECT_LT(layout::codeAddr(100000), layout::kLibraryBase);
    EXPECT_LT(layout::kLibraryBase, layout::kGlobalBase);
    EXPECT_LT(layout::kGlobalBase, layout::kHeapBase);
    EXPECT_LT(layout::kHeapBase, layout::kStackBase);
}

TEST(Layout, StackBasesDoNotOverlap)
{
    EXPECT_GE(layout::stackBase(1),
              layout::stackBase(0) + layout::kStackSize);
}

TEST(Instruction, AccessesMemoryClassification)
{
    Instruction load{.op = Opcode::Load};
    Instruction lock{.op = Opcode::Lock};
    Instruction add{.op = Opcode::Add};
    EXPECT_TRUE(load.accessesMemory());
    EXPECT_TRUE(lock.accessesMemory());
    EXPECT_FALSE(add.accessesMemory());
}

TEST(Disassembler, RendersBranchWithMetadata)
{
    Instruction br;
    br.op = Opcode::Br;
    br.cond = Cond::Lt;
    br.ra = 1;
    br.rb = 2;
    br.target = 42;
    br.loc = SourceLoc{0, 17};
    br.srcBranch = 3;
    br.outcomeWhenTaken = true;
    std::string text = disassemble(br);
    EXPECT_NE(text.find("br lt r1, r2 -> @42"), std::string::npos);
    EXPECT_NE(text.find("line 17"), std::string::npos);
    EXPECT_NE(text.find("srcbr 3/T"), std::string::npos);
}

TEST(Disassembler, RendersKernelMarker)
{
    Instruction inst;
    inst.op = Opcode::Nop;
    inst.kernel = true;
    EXPECT_NE(disassemble(inst).find("[ring0]"), std::string::npos);
}

TEST(Disassembler, RendersSyscallName)
{
    Instruction inst;
    inst.op = Opcode::Syscall;
    inst.imm = static_cast<std::int64_t>(SyscallNo::EnableLbr);
    EXPECT_NE(disassemble(inst).find("DRIVER_ENABLE_LBR"),
              std::string::npos);
}

} // namespace
} // namespace stm
