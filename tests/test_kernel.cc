/**
 * @file
 * Tests for the kernel-mode MiniVM extensions: privilege levels
 * (Thread::cpl, SysEnter/SysRet/Iret), asynchronous interrupt
 * delivery and its determinism contract, and the driver/kernel bug
 * scenario pack with its filter-direction diagnosis semantics
 * (ring-0-suppressing vs ring-3-suppressing LBR_SELECT, and the LCR's
 * kernel filter).
 */

#include <gtest/gtest.h>

#include <functional>

#include "corpus/registry.hh"
#include "diag/auto_diag.hh"
#include "diag/event_key.hh"
#include "diag/log_enhance.hh"
#include "hw/msr.hh"
#include "program/builder.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

RunResult
runOnce(ProgramPtr prog, MachineOptions opts = {})
{
    Machine machine(std::move(prog), std::move(opts));
    return machine.run();
}

/** main stores via a ring-0 stub and prints the result. */
ProgramPtr
roundTripProgram()
{
    ProgramBuilder b("cpl-roundtrip");
    b.global("x", 1, {0});
    b.func("main");
    b.movi(r4, 7);
    b.sysEnter("stub");
    b.loadg(r5, "x");
    b.out(r5);
    b.halt();
    b.kernelMode(true);
    b.func("stub");
    b.storeg("x", 0, r4, r6);
    b.sysRet();
    b.kernelMode(false);
    return b.build();
}

/** A branchy single-threaded user program with handler @p body. */
ProgramPtr
interruptedProgram(const std::function<void(ProgramBuilder &)> &body)
{
    ProgramBuilder b("interrupted");
    b.global("acc", 1, {0});
    b.func("main");
    b.movi(r4, 0);
    b.movi(r5, 120);
    b.beginWhile(Cond::Lt, r4, r5, "main loop");
    {
        b.loadg(r6, "acc");
        b.add(r6, r6, r4);
        b.storeg("acc", 0, r6, r7);
        b.movi(r8, 1);
        b.andr(r8, r4, r8);
        b.movi(r9, 0);
        b.beginIf(Cond::Eq, r8, r9, "even round");
        b.addi(r6, r6, 3);
        b.endIf();
        b.addi(r4, r4, 1);
    }
    b.endWhile();
    b.loadg(r6, "acc");
    b.out(r6);
    b.halt();
    b.kernelMode(true);
    b.func("isr");
    body(b);
    b.iret();
    b.kernelMode(false);
    b.setInterruptHandler("isr");
    return b.build();
}

// ---- privilege transitions ----------------------------------------------

TEST(Privilege, SysEnterSysRetRoundTrip)
{
    RunResult r = runOnce(roundTripProgram());
    EXPECT_EQ(r.outcome, RunOutcome::Completed);
    ASSERT_EQ(r.output.size(), 1u);
    // The stub saw main's r4 and its store is visible after sysret.
    EXPECT_EQ(r.output[0], 7);
    EXPECT_GT(r.stats.kernelInstructions, 0u);
}

TEST(Privilege, SysEnterFromRing0Faults)
{
    ProgramBuilder b("nested-sysenter");
    b.func("main");
    b.sysEnter("stub");
    b.halt();
    b.kernelMode(true);
    b.func("stub");
    b.sysEnter("stub2");
    b.sysRet();
    b.func("stub2");
    b.sysRet();
    b.kernelMode(false);
    RunResult r = runOnce(b.build());
    EXPECT_EQ(r.outcome, RunOutcome::SegFault);
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("sysenter from ring 0"),
              std::string::npos);
}

TEST(Privilege, SysRetFromRing3Faults)
{
    // A plain near call into ring-0 code does not raise CPL; the
    // stub's sysret then executes at ring 3 and faults.
    ProgramBuilder b("stray-sysret");
    b.func("main");
    b.call("stub");
    b.halt();
    b.kernelMode(true);
    b.func("stub");
    b.sysRet();
    b.kernelMode(false);
    RunResult r = runOnce(b.build());
    EXPECT_EQ(r.outcome, RunOutcome::SegFault);
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("sysret from ring 3"),
              std::string::npos);
}

TEST(Privilege, IretOutsideInterruptContextFaults)
{
    ProgramBuilder b("stray-iret");
    b.func("main");
    b.kernelMode(true);
    b.iret();
    b.kernelMode(false);
    b.halt();
    RunResult r = runOnce(b.build());
    EXPECT_EQ(r.outcome, RunOutcome::SegFault);
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("iret outside interrupt"),
              std::string::npos);
}

// ---- interrupt handler discipline ---------------------------------------

TEST(Interrupts, HandlerBudgetExhaustionIsAHang)
{
    ProgramPtr prog = interruptedProgram([](ProgramBuilder &b) {
        b.movi(16, 0);
        b.movi(17, 1);
        b.beginWhile(Cond::Lt, 16, 17, "spin forever");
        b.endWhile();
    });
    MachineOptions opts;
    opts.irq.prob = 1.0;
    opts.irq.handlerStepBudget = 64;
    RunResult r = runOnce(prog, opts);
    EXPECT_EQ(r.outcome, RunOutcome::StepLimit);
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("step budget"),
              std::string::npos);
}

TEST(Interrupts, DisallowedOpcodeInHandlerFaults)
{
    ProgramPtr prog = interruptedProgram(
        [](ProgramBuilder &b) { b.yield(); });
    MachineOptions opts;
    opts.irq.prob = 1.0;
    RunResult r = runOnce(prog, opts);
    EXPECT_EQ(r.outcome, RunOutcome::SegFault);
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(
        r.failure->message.find("not permitted in an interrupt"),
        std::string::npos);
}

TEST(Interrupts, BareRetWithoutFrameInHandlerFaults)
{
    ProgramPtr prog = interruptedProgram(
        [](ProgramBuilder &b) { b.ret(); });
    MachineOptions opts;
    opts.irq.prob = 1.0;
    RunResult r = runOnce(prog, opts);
    EXPECT_EQ(r.outcome, RunOutcome::SegFault);
    ASSERT_TRUE(r.failure.has_value());
    EXPECT_NE(r.failure->message.find("ret without a frame"),
              std::string::npos);
}

TEST(Interrupts, HandlerCallRetWorks)
{
    // Call/ret inside the handler uses the handler-local frame stack.
    ProgramBuilder b("isr-call");
    b.global("acc", 1, {0});
    b.global("ticks", 1, {0});
    b.func("main");
    b.movi(r4, 0);
    b.movi(r5, 40);
    b.beginWhile(Cond::Lt, r4, r5, "main loop");
    b.addi(r4, r4, 1);
    b.endWhile();
    b.halt();
    b.kernelMode(true);
    b.func("isr");
    b.call("isr_helper");
    b.iret();
    b.func("isr_helper");
    b.loadg(16, "ticks");
    b.addi(16, 16, 1);
    b.storeg("ticks", 0, 16, 17);
    b.ret();
    b.kernelMode(false);
    b.setInterruptHandler("isr");
    MachineOptions opts;
    opts.irq.prob = 1.0;
    RunResult r = runOnce(b.build(), opts);
    EXPECT_EQ(r.outcome, RunOutcome::Completed);
}

// ---- delivery semantics ----------------------------------------------------

TEST(Interrupts, DeliveryObservableThroughHandlerEffects)
{
    // Handler emits one output word per activation.
    ProgramPtr noisy = interruptedProgram([](ProgramBuilder &b) {
        b.movi(16, 99);
        b.out(16);
    });
    MachineOptions quietOpts;
    RunResult quiet = runOnce(noisy, quietOpts);
    MachineOptions noisyOpts;
    noisyOpts.irq.prob = 0.2;
    RunResult loud = runOnce(noisy, noisyOpts);
    EXPECT_EQ(quiet.output.size(), 1u);
    EXPECT_GT(loud.output.size(), 10u);
}

TEST(Interrupts, OnlyDeliveredAtUserPrivilege)
{
    // The same loop, run in ring 3 vs inside a ring-0 stub. The
    // handler emits a word per delivery: the ring-0 variant must see
    // drastically fewer activations (only main's few user
    // instructions are delivery points).
    auto build = [](bool in_kernel) {
        ProgramBuilder b(in_kernel ? "k-loop" : "u-loop");
        b.global("acc", 1, {0});
        b.func("main");
        if (in_kernel) {
            b.sysEnter("work");
        } else {
            b.call("work_user");
        }
        b.halt();
        auto emitLoop = [&b]() {
            b.movi(r4, 0);
            b.movi(r5, 200);
            b.beginWhile(Cond::Lt, r4, r5, "work loop");
            {
                b.loadg(r6, "acc");
                b.addi(r6, r6, 1);
                b.storeg("acc", 0, r6, r7);
                b.addi(r4, r4, 1);
            }
            b.endWhile();
        };
        if (in_kernel) {
            b.kernelMode(true);
            b.func("work");
            emitLoop();
            b.sysRet();
            b.kernelMode(false);
        } else {
            b.func("work_user");
            emitLoop();
            b.ret();
        }
        b.kernelMode(true);
        b.func("isr");
        b.movi(16, 1);
        b.out(16);
        b.iret();
        b.kernelMode(false);
        b.setInterruptHandler("isr");
        return b.build();
    };
    MachineOptions opts;
    opts.irq.prob = 0.2;
    RunResult user = runOnce(build(false), opts);
    RunResult kernel = runOnce(build(true), opts);
    EXPECT_EQ(user.outcome, RunOutcome::Completed);
    EXPECT_EQ(kernel.outcome, RunOutcome::Completed);
    EXPECT_GT(user.output.size(), 50u);
    EXPECT_LT(kernel.output.size(), 10u);
}

// ---- the determinism contract -----------------------------------------------

TEST(Interrupts, SameSeedSameResult)
{
    BugSpec bug = corpus::bugById("kirq-race");
    MachineOptions opts = bug.failing.forRun(3);
    RunResult a = runOnce(bug.program, opts);
    RunResult b = runOnce(bug.program, opts);
    EXPECT_EQ(a, b);
}

TEST(Interrupts, DispatchModeAndFusionInvariant)
{
    BugSpec bug = corpus::bugById("kirq-race");
    MachineOptions base = bug.failing.forRun(0);
    RunResult reference;
    bool first = true;
    for (DispatchMode mode :
         {DispatchMode::Switch, DispatchMode::Threaded}) {
        for (bool fuse : {false, true}) {
            MachineOptions opts = base;
            opts.dispatch = mode;
            opts.enableSuperinstructions = fuse;
            RunResult r = runOnce(bug.program, opts);
            if (first) {
                reference = r;
                first = false;
            } else {
                EXPECT_EQ(r, reference);
            }
        }
    }
    EXPECT_TRUE(reference.failStop());
}

TEST(Interrupts, NoOpHandlerRunsBitIdenticalToUninterrupted)
{
    // A bare-iret handler must leave the RunResult byte-identical to
    // a run with delivery disabled: no step, quantum, stats, or
    // profile effects — at every quantum and under both dispatch
    // loops.
    ProgramPtr prog =
        interruptedProgram([](ProgramBuilder &) {});
    for (std::uint32_t quantum : {1u, 3u, 50u}) {
        for (DispatchMode mode :
             {DispatchMode::Switch, DispatchMode::Threaded}) {
            MachineOptions off;
            off.sched.quantum = quantum;
            off.dispatch = mode;
            MachineOptions on = off;
            on.irq.prob = 0.3;
            RunResult quiet = runOnce(prog, off);
            RunResult interrupted = runOnce(prog, on);
            EXPECT_EQ(quiet, interrupted)
                << "quantum=" << quantum << " mode="
                << (mode == DispatchMode::Switch ? "switch"
                                                 : "threaded");
        }
    }
}

// ---- the kernel bug pack: workload behavior ---------------------------------

TEST(KernelPack, FailingWorkloadsFailAndSucceedingSucceed)
{
    for (const BugSpec &bug : corpus::kernelBugs()) {
        int failures = 0, successes = 0;
        for (std::uint64_t i = 0; i < 10; ++i) {
            RunResult f = runOnce(bug.program, bug.failing.forRun(i));
            if (bug.failing.isFailure(f))
                ++failures;
            RunResult s =
                runOnce(bug.program, bug.succeeding.forRun(i));
            if (!bug.succeeding.isFailure(s))
                ++successes;
        }
        EXPECT_GE(failures, 4) << bug.id;
        EXPECT_GE(successes, 7) << bug.id;
    }
}

TEST(KernelPack, StormHangsAndPanicCrashes)
{
    BugSpec storm = corpus::bugById("kirq-storm");
    RunResult r = runOnce(storm.program, storm.failing.forRun(0));
    EXPECT_EQ(r.outcome, RunOutcome::StepLimit);

    BugSpec panic = corpus::bugById("kpanic");
    RunResult p = runOnce(panic.program, panic.failing.forRun(0));
    EXPECT_EQ(p.outcome, RunOutcome::ErrorLogged);
    ASSERT_TRUE(p.failure.has_value());
    EXPECT_NE(p.failure->message.find("kernel BUG"),
              std::string::npos);
}

// ---- diagnosis: ring-0 root causes need the kernel-side select --------------

namespace
{

AutoDiagOptions
withSelect(std::uint64_t select)
{
    AutoDiagOptions opts;
    opts.log.lbrSelect = select;
    return opts;
}

std::size_t
lbraRootPosition(const BugSpec &bug, std::uint64_t select)
{
    AutoDiagResult result = runLbra(bug.program, bug.failing,
                                    bug.succeeding,
                                    withSelect(select));
    if (!result.diagnosed)
        return 0;
    return result.positionOf(
        EventKey::sourceBranch(bug.truth.rootCauseBranch,
                               bug.truth.rootCauseOutcome));
}

} // namespace

TEST(KernelDiag, KernelRootCausesRankFirstUnderKernelSelect)
{
    for (const char *id :
         {"kirq-race", "kirq-atomic", "kpanic", "ksys-check",
          "ksysret-leak"}) {
        BugSpec bug = corpus::bugById(id);
        EXPECT_EQ(lbraRootPosition(bug, msr::kKernelLbrSelect), 1u)
            << id;
    }
}

TEST(KernelDiag, KernelRootCausesInvisibleUnderPaperSelect)
{
    // With ring 0 suppressed (the paper's user-space mask) the
    // root-cause branch never reaches any profile: unrankable.
    for (const char *id :
         {"kirq-race", "kirq-atomic", "kpanic", "ksys-check",
          "ksysret-leak"}) {
        BugSpec bug = corpus::bugById(id);
        EXPECT_EQ(lbraRootPosition(bug, msr::kPaperLbrSelect), 0u)
            << id;
    }
}

TEST(KernelDiag, UserRootCausesRankFirstUnderPaperSelect)
{
    for (const char *id : {"kirq-noise", "kirq-storm"}) {
        BugSpec bug = corpus::bugById(id);
        EXPECT_EQ(lbraRootPosition(bug, msr::kPaperLbrSelect), 1u)
            << id;
    }
}

TEST(KernelDiag, RingZeroNoiseDegradesUserRootCauses)
{
    // Let ring-0 branches into the LBR and the handler activity
    // floods the 16-entry window between root cause and failure.
    const std::uint64_t ringsVisible =
        msr::kPaperLbrSelect & ~msr::kLbrFilterRing0;
    BugSpec noise = corpus::bugById("kirq-noise");
    EXPECT_NE(lbraRootPosition(noise, ringsVisible), 1u);
    // The storm's failure profile is nothing but the wedged spin
    // loop: the user root cause is fully evicted.
    BugSpec storm = corpus::bugById("kirq-storm");
    EXPECT_EQ(lbraRootPosition(storm, ringsVisible), 0u);
}

// ---- differential: suppression == structural absence -----------------------

TEST(KernelDiag, RingSuppressionEqualsStructuralAbsence)
{
    // kirq-noise under the ring-0-suppressing paper mask must produce
    // the exact same ranking as its twin program in which the kernel
    // code does not exist at all — same events, same scores, same
    // order.
    BugSpec noisy = corpus::bugById("kirq-noise");
    BugSpec quiet = corpus::bugById("kirq-noise-quiet");
    AutoDiagResult a = runLbra(noisy.program, noisy.failing,
                               noisy.succeeding,
                               withSelect(msr::kPaperLbrSelect));
    AutoDiagResult b = runLbra(quiet.program, quiet.failing,
                               quiet.succeeding,
                               withSelect(msr::kPaperLbrSelect));
    ASSERT_TRUE(a.diagnosed);
    ASSERT_TRUE(b.diagnosed);
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t i = 0; i < a.ranking.size(); ++i) {
        EXPECT_EQ(a.ranking[i].event, b.ranking[i].event) << i;
        EXPECT_DOUBLE_EQ(a.ranking[i].score, b.ranking[i].score)
            << i;
    }
}

// ---- LCR: the kernel filter decides TOCTOU visibility -----------------------

TEST(KernelDiag, SyscallUarDiagnosedOnlyWithKernelEventsVisible)
{
    BugSpec bug = corpus::bugById("ksys-uar");
    EventKey fpe = EventKey::coherence(
        layout::codeAddr(bug.truth.fpeInstr), bug.truth.fpeState,
        bug.truth.fpeStore);

    AutoDiagOptions visible;
    visible.log.lcrConfig = lcrConfSpaceConsuming();
    visible.log.lcrConfig.filterKernel = false;
    AutoDiagResult with = runLcra(bug.program, bug.failing,
                                  bug.succeeding, visible);
    ASSERT_TRUE(with.diagnosed);
    EXPECT_EQ(with.positionOf(fpe), 1u);

    // Default LCR configuration suppresses ring-0 events: the
    // failure-predicting access is never recorded.
    AutoDiagOptions filtered;
    filtered.log.lcrConfig = lcrConfSpaceConsuming();
    AutoDiagResult without = runLcra(bug.program, bug.failing,
                                     bug.succeeding, filtered);
    if (without.diagnosed)
        EXPECT_EQ(without.positionOf(fpe), 0u);
}

} // namespace
} // namespace stm
