/**
 * @file
 * Edge-case tests for the paged flat memory image (vm/memory_image)
 * as driven through the Machine: segment boundaries, unmapped-address
 * segfaults, page-boundary crossings, heap brk growth via the Alloc
 * syscall, zero-fill semantics, and global overrides.
 *
 * The paged image replaced the seed's `unordered_map<Addr, Word>`;
 * these tests pin the contract that made that swap invisible: a valid
 * never-written cell reads 0, and validity (segment bounds, heap brk,
 * live stack span) is enforced exactly as before.
 */

#include <gtest/gtest.h>

#include <map>

#include "isa/types.hh"
#include "program/builder.hh"
#include "support/random.hh"
#include "test_util.hh"
#include "vm/machine.hh"
#include "vm/memory_image.hh"

namespace stm
{
namespace
{

using namespace regs;

RunResult
runProgram(ProgramPtr prog, MachineOptions opts = {})
{
    Machine machine(std::move(prog), std::move(opts));
    return machine.run();
}

// ---- segment boundaries ---------------------------------------------------

TEST(MemoryImage, LastGlobalWordIsValidOnePastIsNot)
{
    // One 8-word global: [kGlobalBase, kGlobalBase + 64) is mapped.
    ProgramBuilder ok("t");
    ok.global("g", 8);
    ok.func("main");
    ok.loadg(r1, "g", 7 * 8); // last valid word
    ok.out(r1);
    ok.halt();
    RunResult fine = runProgram(ok.build());
    EXPECT_EQ(fine.outcome, RunOutcome::Completed);
    EXPECT_EQ(fine.output, (std::vector<Word>{0}));

    ProgramBuilder bad("t");
    bad.global("g", 8);
    bad.func("main");
    bad.loadg(r1, "g", 8 * 8); // one word past the segment end
    bad.halt();
    RunResult fault = runProgram(bad.build());
    EXPECT_EQ(fault.outcome, RunOutcome::SegFault);
    ASSERT_TRUE(fault.failure.has_value());
}

TEST(MemoryImage, AddressBelowGlobalSegmentSegfaults)
{
    ProgramBuilder b("t");
    b.global("g", 4);
    b.func("main");
    b.movi(r1, static_cast<std::int64_t>(layout::kGlobalBase - 8));
    b.load(r2, r1);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::SegFault);
}

TEST(MemoryImage, GapBetweenHeapAndStackSegfaults)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, static_cast<std::int64_t>(layout::kStackBase - 8));
    b.load(r2, r1);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::SegFault);
}

TEST(MemoryImage, UnspawnedThreadStackIsUnmapped)
{
    // Only main is live, so the stack span covers one kStackSize
    // window; thread 1's would-be stack is invalid until spawned.
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, static_cast<std::int64_t>(layout::stackBase(1) + 64));
    b.load(r2, r1);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::SegFault);
}

TEST(MemoryImage, OwnStackIsReadableAndZeroFilled)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, static_cast<std::int64_t>(layout::stackBase(0)));
    b.load(r2, r1); // never-written stack word reads 0
    b.out(r2);
    b.movi(r3, 77);
    b.store(r1, 0, r3);
    b.load(r4, r1);
    b.out(r4);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{0, 77}));
}

// ---- page boundaries ------------------------------------------------------

TEST(MemoryImage, GlobalSpanningPageBoundaryRoundTrips)
{
    // 4 KiB pages hold 512 words; a 600-word global straddles the
    // first page boundary of the globals segment.
    ProgramBuilder b("t");
    b.global("big", 600);
    b.func("main");
    b.movi(r1, 41);
    b.movi(r2, 42);
    b.storeg("big", 511 * 8, r1, r10); // last word of page 0
    b.storeg("big", 512 * 8, r2, r10); // first word of page 1
    b.loadg(r3, "big", 511 * 8);
    b.loadg(r4, "big", 512 * 8);
    b.out(r3);
    b.out(r4);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{41, 42}));
}

TEST(MemoryImage, AlternatingPagesKeepDistinctContents)
{
    // Ping-pong stores across a page boundary: the one-entry
    // translation cache must never serve a stale page.
    ProgramBuilder b("t");
    b.global("big", 1024);
    b.func("main");
    b.movi(r1, 1);
    b.movi(r2, 2);
    b.storeg("big", 0, r1, r10);       // page 0
    b.storeg("big", 512 * 8, r2, r10); // page 1
    b.loadg(r3, "big", 0);         // back to page 0
    b.loadg(r4, "big", 512 * 8);   // page 1 again
    b.out(r3);
    b.out(r4);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{1, 2}));
}

// ---- heap brk growth ------------------------------------------------------

TEST(MemoryImage, AllocGrowsHeapAndZeroFills)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 64); // bytes
    b.syscall(SyscallNo::Alloc, r1, r2);
    b.out(r2);      // the returned base: first alloc starts at brk 0
    b.load(r3, r2, 56); // last word of the allocation, never written
    b.out(r3);
    b.movi(r4, 9);
    b.store(r2, 56, r4);
    b.load(r5, r2, 56);
    b.out(r5);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output,
              (std::vector<Word>{
                  static_cast<Word>(layout::kHeapBase), 0, 9}));
}

TEST(MemoryImage, AccessBeyondBrkSegfaults)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 64);
    b.syscall(SyscallNo::Alloc, r1, r2);
    b.load(r3, r2, 64); // one word past the allocation
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::SegFault);
}

TEST(MemoryImage, SecondAllocExtendsTheSameSegment)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 4096); // a full page
    b.syscall(SyscallNo::Alloc, r1, r2);
    b.syscall(SyscallNo::Alloc, r1, r3);
    b.movi(r4, 5);
    b.store(r3, 4088, r4); // deep inside the second allocation
    b.load(r5, r3, 4088);
    b.out(r5);
    b.sub(r6, r3, r2); // second base - first base == 4096
    b.out(r6);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{5, 4096}));
}

// ---- zero fill and overrides ---------------------------------------------

TEST(MemoryImage, UninitializedGlobalTailReadsZero)
{
    // init covers 1 of 4 words; the tail must read 0 (the hash-map
    // semantics the paged image preserves).
    ProgramBuilder b("t");
    b.global("g", 4, {123});
    b.func("main");
    b.loadg(r1, "g", 0);
    b.loadg(r2, "g", 8);
    b.loadg(r3, "g", 24);
    b.out(r1);
    b.out(r2);
    b.out(r3);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.output, (std::vector<Word>{123, 0, 0}));
}

TEST(MemoryImage, GlobalOverridesLandInPagedMemory)
{
    ProgramBuilder b("t");
    b.global("cfg", 3, {1, 2, 3});
    b.func("main");
    b.loadg(r1, "cfg", 0);
    b.loadg(r2, "cfg", 8);
    b.loadg(r3, "cfg", 16);
    b.out(r1);
    b.out(r2);
    b.out(r3);
    b.halt();
    MachineOptions opts;
    opts.globalOverrides = {{"cfg", {10, 20}}}; // partial override
    RunResult result = runProgram(b.build(), opts);
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{10, 20, 3}));
}

// ---- model-based property test --------------------------------------------

/**
 * Adversarial address generator for the paged image: addresses spread
 * over all three segments (a bounded number of pages each), biased
 * toward page boundaries (the shift/mask edge cases) and toward
 * alternating pages (evicting the one-entry translation cache as often
 * as possible).
 */
class AddressGen
{
  public:
    explicit AddressGen(Pcg32 &rng) : rng_(rng) {}

    Addr
    next()
    {
        static constexpr Addr bases[] = {
            layout::kGlobalBase, layout::kHeapBase,
            layout::kStackBase};
        constexpr Addr pageBytes = MemoryImage::kPageBytes;
        constexpr Addr pages = 64; // bounded footprint per segment

        Addr page;
        if (rng_.nextBool(0.4) && last_ != 0) {
            // Translation-cache eviction bias: hop to the adjacent
            // page of the previous access, then right back next call.
            page = (last_ & ~MemoryImage::kPageMask) ^ pageBytes;
        } else {
            page = bases[rng_.nextBounded(3)] +
                   pageBytes * rng_.nextBounded(pages);
        }

        Addr offset;
        if (rng_.nextBool(0.5)) {
            // Page-boundary bias: the first or last two cells.
            constexpr Addr edge[] = {0, 8, pageBytes - 16,
                                     pageBytes - 8};
            offset = edge[rng_.nextBounded(4)];
        } else {
            offset = 8 * rng_.nextBounded(
                             static_cast<std::uint32_t>(
                                 MemoryImage::kPageWords));
        }
        last_ = page + offset;
        return last_;
    }

  private:
    Pcg32 &rng_;
    Addr last_ = 0;
};

TEST(MemoryImageModel, AgreesWithMapReferenceOver100kOps)
{
    Pcg32 rng(test::testSeed(), 31);
    AddressGen gen(rng);
    MemoryImage image;
    std::map<Addr, Word> model; // keyed by cell address

    auto cellOf = [](Addr addr) { return addr & ~Addr{7}; };
    auto modelLoad = [&](Addr addr) -> Word {
        auto it = model.find(cellOf(addr));
        return it == model.end() ? 0 : it->second;
    };

    constexpr int kOps = 100000;
    std::uint64_t stores = 0, loads = 0, fills = 0;
    std::uint64_t expectedAccesses = 0;
    for (int op = 0; op < kOps; ++op) {
        std::uint32_t kind = rng.nextBounded(10);
        if (kind < 4) {
            // Load: a never-written cell must read 0, a written cell
            // its last store; sub-cell offsets alias the same cell.
            Addr addr = gen.next() + rng.nextBounded(8);
            ++loads;
            ++expectedAccesses;
            ASSERT_EQ(image.load(addr), modelLoad(addr))
                << "load 0x" << std::hex << addr << " at op " << op;
        } else if (kind < 9) {
            Addr addr = gen.next();
            Word value = (static_cast<Word>(rng.next()) << 32) |
                         rng.next();
            ++stores;
            ++expectedAccesses;
            image.store(addr, value);
            model[cellOf(addr)] = value;
        } else {
            // Fill: a short run of sequential stores, the pattern
            // that crosses page boundaries mid-run.
            Addr addr = gen.next();
            std::uint32_t run = 1 + rng.nextBounded(64);
            Word value = rng.next();
            ++fills;
            expectedAccesses += run;
            for (std::uint32_t i = 0; i < run; ++i) {
                image.store(addr + 8 * i, value + i);
                model[cellOf(addr + 8 * i)] = value + i;
            }
        }
    }
    EXPECT_EQ(image.accesses(), expectedAccesses);

    // Closing sweep: every cell the model knows must match, so a
    // store misrouted to a page the random loads never revisited
    // still fails the test.
    for (const auto &[addr, value] : model)
        ASSERT_EQ(image.load(addr), value)
            << "sweep 0x" << std::hex << addr;

    EXPECT_GT(stores, 0u);
    EXPECT_GT(loads, 0u);
    EXPECT_GT(fills, 0u);
    EXPECT_GT(image.fastHits(), 0u);
    EXPECT_LT(image.fastHits(), image.accesses());
}

TEST(MemoryImageModel, TranslationCacheInvisibleUnderPingPong)
{
    // Two cells on adjacent pages: every access evicts the cache
    // entry the previous one installed. Values must be unaffected.
    MemoryImage image;
    Addr a = layout::kHeapBase + 8;
    Addr b = a + MemoryImage::kPageBytes;
    for (Word i = 0; i < 1000; ++i) {
        image.store(a, i);
        image.store(b, ~i);
        ASSERT_EQ(image.load(a), i);
        ASSERT_EQ(image.load(b), ~i);
    }
    // 4 accesses per iteration, all slow-path page switches except
    // none: the ping-pong defeats the one-entry cache entirely.
    EXPECT_EQ(image.accesses(), 4000u);
    EXPECT_EQ(image.fastHits(), 0u);
}

} // namespace
} // namespace stm
