/**
 * @file
 * Edge-case tests for the paged flat memory image (vm/memory_image)
 * as driven through the Machine: segment boundaries, unmapped-address
 * segfaults, page-boundary crossings, heap brk growth via the Alloc
 * syscall, zero-fill semantics, and global overrides.
 *
 * The paged image replaced the seed's `unordered_map<Addr, Word>`;
 * these tests pin the contract that made that swap invisible: a valid
 * never-written cell reads 0, and validity (segment bounds, heap brk,
 * live stack span) is enforced exactly as before.
 */

#include <gtest/gtest.h>

#include "isa/types.hh"
#include "program/builder.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

RunResult
runProgram(ProgramPtr prog, MachineOptions opts = {})
{
    Machine machine(std::move(prog), std::move(opts));
    return machine.run();
}

// ---- segment boundaries ---------------------------------------------------

TEST(MemoryImage, LastGlobalWordIsValidOnePastIsNot)
{
    // One 8-word global: [kGlobalBase, kGlobalBase + 64) is mapped.
    ProgramBuilder ok("t");
    ok.global("g", 8);
    ok.func("main");
    ok.loadg(r1, "g", 7 * 8); // last valid word
    ok.out(r1);
    ok.halt();
    RunResult fine = runProgram(ok.build());
    EXPECT_EQ(fine.outcome, RunOutcome::Completed);
    EXPECT_EQ(fine.output, (std::vector<Word>{0}));

    ProgramBuilder bad("t");
    bad.global("g", 8);
    bad.func("main");
    bad.loadg(r1, "g", 8 * 8); // one word past the segment end
    bad.halt();
    RunResult fault = runProgram(bad.build());
    EXPECT_EQ(fault.outcome, RunOutcome::SegFault);
    ASSERT_TRUE(fault.failure.has_value());
}

TEST(MemoryImage, AddressBelowGlobalSegmentSegfaults)
{
    ProgramBuilder b("t");
    b.global("g", 4);
    b.func("main");
    b.movi(r1, static_cast<std::int64_t>(layout::kGlobalBase - 8));
    b.load(r2, r1);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::SegFault);
}

TEST(MemoryImage, GapBetweenHeapAndStackSegfaults)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, static_cast<std::int64_t>(layout::kStackBase - 8));
    b.load(r2, r1);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::SegFault);
}

TEST(MemoryImage, UnspawnedThreadStackIsUnmapped)
{
    // Only main is live, so the stack span covers one kStackSize
    // window; thread 1's would-be stack is invalid until spawned.
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, static_cast<std::int64_t>(layout::stackBase(1) + 64));
    b.load(r2, r1);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::SegFault);
}

TEST(MemoryImage, OwnStackIsReadableAndZeroFilled)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, static_cast<std::int64_t>(layout::stackBase(0)));
    b.load(r2, r1); // never-written stack word reads 0
    b.out(r2);
    b.movi(r3, 77);
    b.store(r1, 0, r3);
    b.load(r4, r1);
    b.out(r4);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{0, 77}));
}

// ---- page boundaries ------------------------------------------------------

TEST(MemoryImage, GlobalSpanningPageBoundaryRoundTrips)
{
    // 4 KiB pages hold 512 words; a 600-word global straddles the
    // first page boundary of the globals segment.
    ProgramBuilder b("t");
    b.global("big", 600);
    b.func("main");
    b.movi(r1, 41);
    b.movi(r2, 42);
    b.storeg("big", 511 * 8, r1, r10); // last word of page 0
    b.storeg("big", 512 * 8, r2, r10); // first word of page 1
    b.loadg(r3, "big", 511 * 8);
    b.loadg(r4, "big", 512 * 8);
    b.out(r3);
    b.out(r4);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{41, 42}));
}

TEST(MemoryImage, AlternatingPagesKeepDistinctContents)
{
    // Ping-pong stores across a page boundary: the one-entry
    // translation cache must never serve a stale page.
    ProgramBuilder b("t");
    b.global("big", 1024);
    b.func("main");
    b.movi(r1, 1);
    b.movi(r2, 2);
    b.storeg("big", 0, r1, r10);       // page 0
    b.storeg("big", 512 * 8, r2, r10); // page 1
    b.loadg(r3, "big", 0);         // back to page 0
    b.loadg(r4, "big", 512 * 8);   // page 1 again
    b.out(r3);
    b.out(r4);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{1, 2}));
}

// ---- heap brk growth ------------------------------------------------------

TEST(MemoryImage, AllocGrowsHeapAndZeroFills)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 64); // bytes
    b.syscall(SyscallNo::Alloc, r1, r2);
    b.out(r2);      // the returned base: first alloc starts at brk 0
    b.load(r3, r2, 56); // last word of the allocation, never written
    b.out(r3);
    b.movi(r4, 9);
    b.store(r2, 56, r4);
    b.load(r5, r2, 56);
    b.out(r5);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output,
              (std::vector<Word>{
                  static_cast<Word>(layout::kHeapBase), 0, 9}));
}

TEST(MemoryImage, AccessBeyondBrkSegfaults)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 64);
    b.syscall(SyscallNo::Alloc, r1, r2);
    b.load(r3, r2, 64); // one word past the allocation
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::SegFault);
}

TEST(MemoryImage, SecondAllocExtendsTheSameSegment)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 4096); // a full page
    b.syscall(SyscallNo::Alloc, r1, r2);
    b.syscall(SyscallNo::Alloc, r1, r3);
    b.movi(r4, 5);
    b.store(r3, 4088, r4); // deep inside the second allocation
    b.load(r5, r3, 4088);
    b.out(r5);
    b.sub(r6, r3, r2); // second base - first base == 4096
    b.out(r6);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{5, 4096}));
}

// ---- zero fill and overrides ---------------------------------------------

TEST(MemoryImage, UninitializedGlobalTailReadsZero)
{
    // init covers 1 of 4 words; the tail must read 0 (the hash-map
    // semantics the paged image preserves).
    ProgramBuilder b("t");
    b.global("g", 4, {123});
    b.func("main");
    b.loadg(r1, "g", 0);
    b.loadg(r2, "g", 8);
    b.loadg(r3, "g", 24);
    b.out(r1);
    b.out(r2);
    b.out(r3);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.output, (std::vector<Word>{123, 0, 0}));
}

TEST(MemoryImage, GlobalOverridesLandInPagedMemory)
{
    ProgramBuilder b("t");
    b.global("cfg", 3, {1, 2, 3});
    b.func("main");
    b.loadg(r1, "cfg", 0);
    b.loadg(r2, "cfg", 8);
    b.loadg(r3, "cfg", 16);
    b.out(r1);
    b.out(r2);
    b.out(r3);
    b.halt();
    MachineOptions opts;
    opts.globalOverrides = {{"cfg", {10, 20}}}; // partial override
    RunResult result = runProgram(b.build(), opts);
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{10, 20, 3}));
}

} // namespace
} // namespace stm
