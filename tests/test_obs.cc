/**
 * @file
 * Tests for the observability layer (src/obs): recorder gating and
 * ring semantics, multithreaded recording, dump round-trips over
 * randomized event streams, the full hostile-byte sweep (every
 * truncation length, every single-byte corruption, version skew) on
 * the binary format, Chrome JSON losslessness, and the stats
 * aggregation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <thread>

#include "obs/trace.hh"
#include "obs/trace_io.hh"
#include "support/checksum.hh"
#include "support/random.hh"
#include "test_util.hh"

namespace stm::obs
{
namespace
{

// Recorder state is process-global; every test starts from scratch.
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setTracingEnabled(false);
        clearTrace();
    }

    void
    TearDown() override
    {
        setTracingEnabled(false);
        clearTrace();
        setTraceCapacity(65536);
    }
};

TraceEvent
randomEvent(Pcg32 &rng)
{
    TraceEvent e;
    e.tsc = (static_cast<std::uint64_t>(rng.next()) << 32) |
            rng.next();
    e.tid = rng.next();
    e.category =
        static_cast<TraceCategory>(rng.nextBounded(kTraceCategoryCount));
    e.phase = static_cast<TracePhase>(rng.nextBounded(kTracePhaseCount));
    e.id = static_cast<TraceId>(rng.nextBounded(kTraceIdCount));
    e.arg = (static_cast<std::uint64_t>(rng.next()) << 32) |
            rng.next();
    return e;
}

std::vector<TraceEvent>
randomStream(Pcg32 &rng, std::size_t count)
{
    std::vector<TraceEvent> events;
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        events.push_back(randomEvent(rng));
    return events;
}

// ---- recorder -----------------------------------------------------------

TEST_F(ObsTest, DisabledRecorderRecordsNothing)
{
    ASSERT_FALSE(tracingEnabled());
    traceInstant(TraceCategory::Vm, TraceId::VmRun, 1);
    {
        TraceSpan span(TraceCategory::Diag, TraceId::DiagRank);
    }
    EXPECT_TRUE(collectTrace().empty());
    EXPECT_EQ(traceEventsRecorded(), 0u);
}

TEST_F(ObsTest, RecordsEventsWhenEnabled)
{
    setTracingEnabled(true);
    traceInstant(TraceCategory::Fleet, TraceId::FleetDrop, 7);
    traceInstant(TraceCategory::Vm, TraceId::VmQuantum, 9);
    setTracingEnabled(false);

    std::vector<TraceEvent> events = collectTrace();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].id, TraceId::FleetDrop);
    EXPECT_EQ(events[0].phase, TracePhase::Instant);
    EXPECT_EQ(events[0].arg, 7u);
    EXPECT_EQ(events[1].id, TraceId::VmQuantum);
    EXPECT_LE(events[0].tsc, events[1].tsc);
    EXPECT_EQ(traceEventsRecorded(), 2u);
}

TEST_F(ObsTest, SpanEmitsMatchedBeginEnd)
{
    setTracingEnabled(true);
    {
        TraceSpan span(TraceCategory::Diag, TraceId::DiagPinSearch, 3);
        span.setArg(11);
    }
    setTracingEnabled(false);

    std::vector<TraceEvent> events = collectTrace();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, TracePhase::Begin);
    EXPECT_EQ(events[0].arg, 3u); // Begin carries the initial arg
    EXPECT_EQ(events[1].phase, TracePhase::End);
    EXPECT_EQ(events[1].arg, 11u); // End carries setArg()
    EXPECT_EQ(events[0].id, TraceId::DiagPinSearch);
    EXPECT_EQ(events[1].id, TraceId::DiagPinSearch);
}

TEST_F(ObsTest, SpanArmedAtConstructionSurvivesMidScopeToggle)
{
    setTracingEnabled(true);
    {
        TraceSpan span(TraceCategory::Exec, TraceId::ExecBatch);
        setTracingEnabled(false);
        // The span was armed when tracing was on: its End must still
        // be recorded, never leaving an unmatched Begin behind.
    }
    std::vector<TraceEvent> events = collectTrace();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].phase, TracePhase::End);

    clearTrace();
    {
        TraceSpan span(TraceCategory::Exec, TraceId::ExecBatch);
        setTracingEnabled(true);
        // Armed while tracing was off: stays silent for its lifetime.
    }
    EXPECT_TRUE(collectTrace().empty());
}

TEST_F(ObsTest, RingKeepsNewestEvents)
{
    setTraceCapacity(16);
    setTracingEnabled(true);
    for (std::uint64_t i = 0; i < 100; ++i)
        traceInstant(TraceCategory::Vm, TraceId::VmQuantum, i);
    setTracingEnabled(false);

    std::vector<TraceEvent> events = collectTrace();
    ASSERT_EQ(events.size(), 16u);
    // Overwrite-oldest, exactly like the LBR: the survivors are the
    // most recent 16 args, oldest-first.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].arg, 84 + i);
    EXPECT_EQ(traceEventsRecorded(), 100u);
}

TEST_F(ObsTest, CapacityIsClampedToMinimum)
{
    setTraceCapacity(1);
    EXPECT_GE(traceCapacity(), 16u);
}

TEST_F(ObsTest, MultithreadedRecordingKeepsEveryThread)
{
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 200;
    setTracingEnabled(true);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                traceInstant(TraceCategory::Exec,
                             TraceId::ExecTaskClaim,
                             t * kPerThread + i);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    setTracingEnabled(false);

    // Rings outlive their threads; the drain sees all of them.
    std::vector<TraceEvent> events = collectTrace();
    std::set<std::uint64_t> args;
    std::set<std::uint32_t> tids;
    for (const TraceEvent &e : events) {
        args.insert(e.arg);
        tids.insert(e.tid);
    }
    EXPECT_EQ(events.size(), kThreads * kPerThread);
    EXPECT_EQ(args.size(), kThreads * kPerThread);
    EXPECT_GE(tids.size(), static_cast<std::size_t>(kThreads));
    EXPECT_TRUE(std::is_sorted(
        events.begin(), events.end(),
        [](const TraceEvent &a, const TraceEvent &b) {
            return a.tsc < b.tsc ||
                   (a.tsc == b.tsc && a.tid < b.tid);
        }));
}

// ---- binary dump format -------------------------------------------------

TEST_F(ObsTest, EncodeDecodeRoundTripsRandomStreams)
{
    Pcg32 rng(test::testSeed(), 41);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<TraceEvent> events =
            randomStream(rng, rng.nextBounded(200));
        std::vector<std::uint8_t> dump = encodeTrace(events);
        EXPECT_EQ(dump.size(),
                  kTraceHeaderSize + 4 +
                      kTraceEventSize * events.size());

        std::vector<TraceEvent> decoded;
        ASSERT_EQ(decodeTrace(dump, &decoded), TraceIoStatus::Ok);
        EXPECT_EQ(decoded, events);
    }
}

TEST_F(ObsTest, EmptyTraceRoundTrips)
{
    std::vector<TraceEvent> decoded;
    ASSERT_EQ(decodeTrace(encodeTrace({}), &decoded),
              TraceIoStatus::Ok);
    EXPECT_TRUE(decoded.empty());
}

TEST_F(ObsTest, EveryTruncationIsRejected)
{
    Pcg32 rng(test::testSeed(), 42);
    std::vector<TraceEvent> events = randomStream(rng, 8);
    std::vector<std::uint8_t> dump = encodeTrace(events);

    for (std::size_t len = 0; len < dump.size(); ++len) {
        std::vector<TraceEvent> out{randomEvent(rng)};
        std::vector<TraceEvent> before = out;
        TraceIoStatus st = decodeTrace(dump.data(), len, &out);
        EXPECT_NE(st, TraceIoStatus::Ok) << "length " << len;
        EXPECT_EQ(st, TraceIoStatus::Truncated) << "length " << len;
        EXPECT_EQ(out, before) << "output clobbered at " << len;
    }
}

TEST_F(ObsTest, EverySingleByteCorruptionIsRejected)
{
    Pcg32 rng(test::testSeed(), 43);
    std::vector<TraceEvent> events = randomStream(rng, 6);
    std::vector<std::uint8_t> dump = encodeTrace(events);

    for (std::size_t pos = 0; pos < dump.size(); ++pos) {
        for (std::uint8_t flip : {0x01, 0x80}) {
            std::vector<std::uint8_t> bad = dump;
            bad[pos] ^= flip;
            std::vector<TraceEvent> out;
            TraceIoStatus st = decodeTrace(bad, &out);
            EXPECT_NE(st, TraceIoStatus::Ok)
                << "byte " << pos << " flip " << int(flip);
            if (pos < 4) {
                EXPECT_EQ(st, TraceIoStatus::BadMagic) << pos;
            } else if (pos >= 4 && pos < 6) {
                // Version precedes the CRC check: a skewed version
                // must never be reinterpreted as corruption.
                EXPECT_EQ(st, TraceIoStatus::BadVersion) << pos;
            } else if (pos >= 12 && pos < 16) {
                EXPECT_EQ(st, TraceIoStatus::BadCrc) << pos;
            } else if (pos >= kTraceHeaderSize) {
                EXPECT_EQ(st, TraceIoStatus::BadCrc) << pos;
            }
            // Bytes 6..12 (flags, payloadLen) may legitimately fail
            // as Truncated/Malformed/BadCrc depending on the bit.
        }
    }
}

TEST_F(ObsTest, TrailingBytesAreMalformed)
{
    std::vector<std::uint8_t> dump = encodeTrace({});
    dump.push_back(0);
    std::vector<TraceEvent> out;
    EXPECT_EQ(decodeTrace(dump, &out), TraceIoStatus::Malformed);
}

TEST_F(ObsTest, CountPayloadMismatchIsMalformed)
{
    // Hand-build a frame whose count disagrees with payloadLen but
    // whose CRC is valid: the strict count check must catch it.
    Pcg32 rng(test::testSeed(), 44);
    std::vector<TraceEvent> events = randomStream(rng, 3);
    std::vector<std::uint8_t> dump = encodeTrace(events);
    // Bump the count field (first payload u32) and re-CRC.
    dump[kTraceHeaderSize] += 1;
    std::uint32_t crc = crc32Init();
    crc = crc32Update(crc, dump.data() + 4, 8);
    crc = crc32Update(crc, dump.data() + kTraceHeaderSize,
                      dump.size() - kTraceHeaderSize);
    crc = crc32Final(crc);
    dump[12] = static_cast<std::uint8_t>(crc);
    dump[13] = static_cast<std::uint8_t>(crc >> 8);
    dump[14] = static_cast<std::uint8_t>(crc >> 16);
    dump[15] = static_cast<std::uint8_t>(crc >> 24);

    std::vector<TraceEvent> out;
    EXPECT_EQ(decodeTrace(dump, &out), TraceIoStatus::Malformed);
}

TEST_F(ObsTest, OutOfRangeEnumIsMalformed)
{
    // Corrupt the category byte of the first record, with a re-CRC so
    // only the enum check can reject it.
    std::vector<TraceEvent> events{TraceEvent{}};
    std::vector<std::uint8_t> dump = encodeTrace(events);
    std::size_t catOff = kTraceHeaderSize + 4 + 12;
    dump[catOff] = 0xEE;
    std::uint32_t crc = crc32Init();
    crc = crc32Update(crc, dump.data() + 4, 8);
    crc = crc32Update(crc, dump.data() + kTraceHeaderSize,
                      dump.size() - kTraceHeaderSize);
    crc = crc32Final(crc);
    dump[12] = static_cast<std::uint8_t>(crc);
    dump[13] = static_cast<std::uint8_t>(crc >> 8);
    dump[14] = static_cast<std::uint8_t>(crc >> 16);
    dump[15] = static_cast<std::uint8_t>(crc >> 24);

    std::vector<TraceEvent> out;
    EXPECT_EQ(decodeTrace(dump, &out), TraceIoStatus::Malformed);
}

TEST_F(ObsTest, VersionSkewIsDetectedBeforeCrc)
{
    std::vector<std::uint8_t> dump = encodeTrace({});
    dump[4] = static_cast<std::uint8_t>(kTraceVersion + 1);
    // Deliberately stale CRC: version must win over BadCrc.
    std::vector<TraceEvent> out;
    EXPECT_EQ(decodeTrace(dump, &out), TraceIoStatus::BadVersion);
}

TEST_F(ObsTest, FileRoundTripAndIoError)
{
    Pcg32 rng(test::testSeed(), 45);
    std::vector<TraceEvent> events = randomStream(rng, 32);
    std::string path = ::testing::TempDir() + "obs_roundtrip.stmt";
    ASSERT_EQ(writeTraceFile(path, events), TraceIoStatus::Ok);

    std::vector<TraceEvent> decoded;
    ASSERT_EQ(readTraceFile(path, &decoded), TraceIoStatus::Ok);
    EXPECT_EQ(decoded, events);

    EXPECT_EQ(readTraceFile(path + ".does-not-exist", &decoded),
              TraceIoStatus::IoError);
    EXPECT_EQ(writeTraceFile("/nonexistent-dir/x/y.stmt", events),
              TraceIoStatus::IoError);
}

// ---- Chrome export ------------------------------------------------------

TEST_F(ObsTest, ChromeJsonIsLossless)
{
    TraceEvent begin;
    begin.tsc = 1234567;
    begin.tid = 3;
    begin.category = TraceCategory::Diag;
    begin.phase = TracePhase::Begin;
    begin.id = TraceId::DiagPinSearch;
    begin.arg = 42;
    TraceEvent end = begin;
    end.tsc = 2345678;
    end.phase = TracePhase::End;
    TraceEvent instant;
    instant.tsc = 999;
    instant.tid = 0;
    instant.category = TraceCategory::Fleet;
    instant.phase = TracePhase::Instant;
    instant.id = TraceId::FleetDrop;
    instant.arg = 0xFFFFFFFFFFFFFFFFull;

    std::string json = chromeTraceJson({begin, end, instant});
    // One record per event, with phase letters and microsecond
    // timestamps derived from the nanosecond tsc.
    EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"diag.pin_search\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"diag\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 1234.567"), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 2345.678"), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 0.999"), std::string::npos);
    // Lossless: the exact tsc and arg ride in "args".
    EXPECT_NE(json.find("\"tsc\": 1234567"), std::string::npos);
    EXPECT_NE(json.find("\"arg\": 18446744073709551615"),
              std::string::npos);
    EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
}

TEST_F(ObsTest, ChromeJsonHandlesEmptyTrace)
{
    std::string json = chromeTraceJson({});
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// ---- stats --------------------------------------------------------------

TEST_F(ObsTest, SummarizeMatchesSpansPerThread)
{
    auto ev = [](std::uint64_t tsc, std::uint32_t tid,
                 TracePhase phase, TraceId id) {
        TraceEvent e;
        e.tsc = tsc;
        e.tid = tid;
        e.category = TraceCategory::Exec;
        e.phase = phase;
        e.id = id;
        return e;
    };
    // Two threads interleaved: matching is per (tid, id), so t0's End
    // must not close t1's Begin. t0's nested spans match innermost
    // first.
    std::vector<TraceEvent> events{
        ev(100, 0, TracePhase::Begin, TraceId::ExecBatch),
        ev(150, 1, TracePhase::Begin, TraceId::ExecBatch),
        ev(200, 0, TracePhase::Begin, TraceId::ExecTask),
        ev(300, 0, TracePhase::End, TraceId::ExecTask),
        ev(400, 0, TracePhase::End, TraceId::ExecBatch),
        ev(450, 1, TracePhase::End, TraceId::ExecBatch),
        ev(500, 0, TracePhase::Instant, TraceId::ExecTaskClaim),
        ev(600, 1, TracePhase::End, TraceId::ExecTask), // orphan
    };
    std::vector<TraceIdStats> stats = summarizeTrace(events);

    auto find = [&](TraceId id) -> const TraceIdStats * {
        for (const TraceIdStats &s : stats)
            if (s.id == id)
                return &s;
        return nullptr;
    };
    const TraceIdStats *batch = find(TraceId::ExecBatch);
    ASSERT_NE(batch, nullptr);
    EXPECT_EQ(batch->spans, 2u);
    EXPECT_EQ(batch->unmatched, 0u);
    EXPECT_EQ(batch->totalNanos, (400 - 100) + (450 - 150));

    const TraceIdStats *task = find(TraceId::ExecTask);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(task->spans, 1u);
    EXPECT_EQ(task->unmatched, 1u); // t1's orphan End
    EXPECT_EQ(task->totalNanos, 100u);

    const TraceIdStats *claim = find(TraceId::ExecTaskClaim);
    ASSERT_NE(claim, nullptr);
    EXPECT_EQ(claim->instants, 1u);
    EXPECT_EQ(claim->spans, 0u);

    std::string table = traceStatsTable(events);
    EXPECT_NE(table.find("exec.batch"), std::string::npos);
    EXPECT_NE(table.find("exec.task"), std::string::npos);
}

TEST_F(ObsTest, NamesAreUniqueAndStable)
{
    std::set<std::string> names;
    for (std::uint16_t i = 0; i < kTraceIdCount; ++i)
        names.insert(traceIdName(static_cast<TraceId>(i)));
    EXPECT_EQ(names.size(), kTraceIdCount);
    std::set<std::string> cats;
    for (std::uint8_t i = 0; i < kTraceCategoryCount; ++i)
        cats.insert(traceCategoryName(static_cast<TraceCategory>(i)));
    EXPECT_EQ(cats.size(), kTraceCategoryCount);
}

// ---- recorder -> dump -> export, end to end -----------------------------

TEST_F(ObsTest, RecorderStreamSurvivesDumpAndExport)
{
    Pcg32 rng(test::testSeed(), 46);
    setTracingEnabled(true);
    for (int i = 0; i < 500; ++i) {
        auto cat = static_cast<TraceCategory>(
            rng.nextBounded(kTraceCategoryCount));
        auto id =
            static_cast<TraceId>(rng.nextBounded(kTraceIdCount));
        if (rng.nextBool(0.5)) {
            traceInstant(cat, id, rng.next());
        } else {
            TraceSpan span(cat, id, rng.next());
        }
    }
    setTracingEnabled(false);

    std::vector<TraceEvent> events = collectTrace();
    EXPECT_GE(events.size(), 500u); // spans emit two events

    std::vector<TraceEvent> decoded;
    ASSERT_EQ(decodeTrace(encodeTrace(events), &decoded),
              TraceIoStatus::Ok);
    EXPECT_EQ(decoded, events);
    EXPECT_FALSE(chromeTraceJson(decoded).empty());
    EXPECT_FALSE(traceStatsTable(decoded).empty());
}

} // namespace
} // namespace stm::obs
