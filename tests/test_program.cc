/**
 * @file
 * Unit tests for the Program IR accessors, event-key descriptions,
 * the report helpers, and Workload seed derivation.
 */

#include <gtest/gtest.h>

#include "diag/event_key.hh"
#include "diag/report.hh"
#include "diag/workload.hh"
#include "program/builder.hh"
#include "support/logging.hh"

namespace stm
{
namespace
{

using namespace regs;

ProgramPtr
smallProgram()
{
    ProgramBuilder b("small");
    b.file("a.c");
    b.global("g", 2, {1, 2});
    b.line(5);
    b.func("main");
    b.loadg(r1, "g");
    b.movi(r2, 0);
    b.beginIf(Cond::Gt, r1, r2, "g positive");
    b.logError("bad g", "my_log");
    b.endIf();
    b.call("helper");
    b.halt();
    b.file("b.c");
    b.line(9);
    b.func("helper");
    b.logInfo("helper ran");
    b.ret();
    return b.build();
}

TEST(Program, FunctionLookup)
{
    ProgramPtr prog = smallProgram();
    EXPECT_EQ(prog->functionByName("main").entry, prog->entry);
    EXPECT_GT(prog->functionByName("helper").entry, 0u);
    EXPECT_THROW(prog->functionByName("nope"), PanicError);
}

TEST(Program, SymbolLookupAndBounds)
{
    ProgramPtr prog = smallProgram();
    EXPECT_EQ(prog->symbolByName("g").sizeWords, 2u);
    EXPECT_THROW(prog->symbolByName("nope"), PanicError);
    EXPECT_EQ(prog->globalsEnd(),
              prog->symbolAddr("g") + 16);
}

TEST(Program, SiteAndBranchAccessorsValidate)
{
    ProgramPtr prog = smallProgram();
    EXPECT_EQ(prog->logSites.size(), 2u);
    EXPECT_EQ(prog->failureSites().size(), 1u);
    EXPECT_THROW(prog->logSite(99), PanicError);
    EXPECT_THROW(prog->branch(99), PanicError);
}

TEST(Program, FileNamesResolve)
{
    ProgramPtr prog = smallProgram();
    EXPECT_EQ(prog->fileName(0), "a.c");
    EXPECT_EQ(prog->fileName(1), "b.c");
    EXPECT_EQ(prog->fileName(7), "?");
}

TEST(Program, LogSiteMetadata)
{
    ProgramPtr prog = smallProgram();
    const LogSiteInfo &site = *prog->failureSites()[0];
    EXPECT_EQ(site.message, "bad g");
    EXPECT_EQ(site.logFunction, "my_log");
    EXPECT_EQ(prog->code[site.instrIndex].op, Opcode::LogError);
}

// ---- EventKey::describe -----------------------------------------------------

TEST(EventDescribe, SourceBranchShowsNoteAndLocation)
{
    ProgramPtr prog = smallProgram();
    std::string text =
        EventKey::sourceBranch(0, true).describe(*prog);
    EXPECT_NE(text.find("g positive"), std::string::npos);
    EXPECT_NE(text.find("a.c"), std::string::npos);
    EXPECT_NE(text.find("true"), std::string::npos);
}

TEST(EventDescribe, OutOfRangeBranchDegradesGracefully)
{
    ProgramPtr prog = smallProgram();
    std::string text =
        EventKey::sourceBranch(999, false).describe(*prog);
    EXPECT_NE(text.find("branch#999"), std::string::npos);
}

TEST(EventDescribe, RawBranchClassifiesRegions)
{
    ProgramPtr prog = smallProgram();
    EXPECT_NE(EventKey::rawBranch(layout::kLibraryBase + 0x100)
                  .describe(*prog)
                  .find("library branch"),
              std::string::npos);
    EXPECT_NE(EventKey::rawBranch(layout::kKernelText)
                  .describe(*prog)
                  .find("kernel branch"),
              std::string::npos);
}

TEST(EventDescribe, CoherenceMapsPcToSource)
{
    ProgramPtr prog = smallProgram();
    std::string text =
        EventKey::coherence(layout::codeAddr(0),
                            MesiState::Invalid, false)
            .describe(*prog);
    EXPECT_NE(text.find("load observing I"), std::string::npos);
    EXPECT_NE(text.find("a.c:5"), std::string::npos);

    std::string lib =
        EventKey::coherence(layout::kLibraryBase + 8,
                            MesiState::Shared, true)
            .describe(*prog);
    EXPECT_NE(lib.find("store observing S"), std::string::npos);
    EXPECT_NE(lib.find("library/driver"), std::string::npos);
}

// ---- Workload ----------------------------------------------------------------

TEST(Workload, ForRunDerivesDistinctSeeds)
{
    Workload w;
    w.base.sched.seed = 100;
    EXPECT_EQ(w.forRun(0).sched.seed, 100u);
    EXPECT_NE(w.forRun(1).sched.seed, w.forRun(2).sched.seed);
    // Everything else is preserved.
    w.base.maxSteps = 1234;
    w.base.cache.sizeBytes = 4096;
    MachineOptions derived = w.forRun(5);
    EXPECT_EQ(derived.maxSteps, 1234u);
    EXPECT_EQ(derived.cache.sizeBytes, 4096u);
}

TEST(Workload, DefaultLabelIsFailStop)
{
    Workload w;
    RunResult ok;
    ok.outcome = RunOutcome::Completed;
    EXPECT_FALSE(w.isFailure(ok));
    RunResult crash;
    crash.outcome = RunOutcome::SegFault;
    EXPECT_TRUE(w.isFailure(crash));
}

// ---- RunResult helpers ------------------------------------------------------

TEST(RunResult, LastProfilePicksTheNewestMatching)
{
    RunResult run;
    ProfileRecord a;
    a.kind = ProfileKind::Lbr;
    a.site = 3;
    a.step = 1;
    ProfileRecord b;
    b.kind = ProfileKind::Lbr;
    b.site = 3;
    b.step = 2;
    ProfileRecord other;
    other.kind = ProfileKind::Lcr;
    other.site = 3;
    run.profiles = {a, b, other};
    const ProfileRecord *found =
        run.lastProfile(ProfileKind::Lbr, 3);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->step, 2u);
    EXPECT_EQ(run.lastProfile(ProfileKind::Lbr, 9), nullptr);
}

TEST(RunResult, OverheadArithmetic)
{
    RunStats stats;
    stats.userInstructions = 900;
    stats.kernelInstructions = 100;
    stats.instrumentationInstructions = 60;
    stats.setupInstructions = 10;
    EXPECT_DOUBLE_EQ(stats.overhead(), 0.06);
    EXPECT_DOUBLE_EQ(stats.steadyOverhead(), 0.05);
    RunStats empty;
    EXPECT_DOUBLE_EQ(empty.overhead(), 0.0);
}

TEST(RunResult, OutcomeNamesAreStable)
{
    EXPECT_EQ(runOutcomeName(RunOutcome::Completed), "completed");
    EXPECT_EQ(runOutcomeName(RunOutcome::SegFault), "segfault");
    EXPECT_EQ(runOutcomeName(RunOutcome::StepLimit), "hang");
    EXPECT_EQ(runOutcomeName(RunOutcome::Deadlock), "deadlock");
}

} // namespace
} // namespace stm
