/**
 * @file
 * Property/fuzz tests against reference models: the ring buffer vs a
 * deque, VM memory vs a map, CFG reachability over the whole corpus,
 * and end-to-end determinism under randomized workload sweeps.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "corpus/registry.hh"
#include "diag/log_enhance.hh"
#include "program/builder.hh"
#include "program/cfg.hh"
#include "support/random.hh"
#include "support/ring_buffer.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

TEST(Property, RingBufferMatchesDequeModel)
{
    Pcg32 rng(2024);
    for (int round = 0; round < 50; ++round) {
        std::size_t capacity = 1 + rng.nextBounded(20);
        RingBuffer<int> ring(capacity);
        std::deque<int> model;
        for (int op = 0; op < 200; ++op) {
            int choice = static_cast<int>(rng.nextBounded(10));
            if (choice == 0) {
                ring.clear();
                model.clear();
            } else {
                int value = static_cast<int>(rng.next());
                ring.push(value);
                model.push_back(value);
                if (model.size() > capacity)
                    model.pop_front();
            }
            ASSERT_EQ(ring.size(), model.size());
            for (std::size_t i = 0; i < model.size(); ++i) {
                ASSERT_EQ(ring.newest(i),
                          model[model.size() - 1 - i]);
                ASSERT_EQ(ring.oldest(i), model[i]);
            }
        }
    }
}

TEST(Property, VmMemoryMatchesMapModel)
{
    // Random loads/stores over a global array agree with a model map.
    ProgramBuilder b("memfuzz");
    b.global("arr", 64, {});
    b.func("main");
    // regs: r1 = address base, r2 = value, r3 = loaded
    Pcg32 rng(7);
    std::map<int, Word> model;
    std::vector<std::pair<int, Word>> expectedReads;
    for (int op = 0; op < 120; ++op) {
        int slot = static_cast<int>(rng.nextBounded(64));
        if (rng.nextBool(0.5)) {
            Word value = static_cast<Word>(rng.next());
            b.movi(r2, value);
            b.storeg("arr", 8 * slot, r2, r4);
            model[slot] = value;
        } else {
            b.loadg(r3, "arr", 8 * slot);
            b.out(r3);
            auto it = model.find(slot);
            expectedReads.emplace_back(
                slot, it == model.end() ? 0 : it->second);
        }
    }
    b.halt();
    Machine machine(b.build());
    RunResult result = machine.run();
    ASSERT_EQ(result.outcome, RunOutcome::Completed);
    ASSERT_EQ(result.output.size(), expectedReads.size());
    for (std::size_t i = 0; i < expectedReads.size(); ++i)
        EXPECT_EQ(result.output[i], expectedReads[i].second);
}

TEST(Property, EveryCorpusLogSiteHasBackwardPaths)
{
    // Each logging site of each sequential program is reachable in
    // the CFG sense: the useful-branch analyzer finds at least one
    // backward path (i.e. no orphaned logging sites).
    for (BugSpec &bug : corpus::sequentialBugs()) {
        Cfg cfg(*bug.program);
        std::vector<bool> entryReach;
        for (const auto &site : bug.program->logSites) {
            std::vector<bool> reach =
                cfg.canReach(site.instrIndex);
            EXPECT_TRUE(reach[bug.program->entry])
                << bug.id << " site " << site.id
                << " unreachable from entry";
        }
    }
}

TEST(Property, NormalizationHoldsForTheWholeCorpus)
{
    for (BugSpec &bug : corpus::allBugs())
        EXPECT_TRUE(bug.program->isNormalized()) << bug.id;
    for (BugSpec &bug : corpus::microBugs())
        EXPECT_TRUE(bug.program->isNormalized()) << bug.id;
}

TEST(Property, SourceBranchPairsShareLocation)
{
    // Every (Br, normalization Jmp) pair carries the same source
    // location, so the diagnosis layer can report either record as
    // the same source line.
    for (BugSpec &bug : corpus::allBugs()) {
        const auto &code = bug.program->code;
        for (std::size_t i = 0; i + 1 < code.size(); ++i) {
            if (code[i].op == Opcode::Br &&
                code[i].srcBranch != kNoSourceBranch) {
                EXPECT_EQ(code[i].loc.file, code[i + 1].loc.file);
                EXPECT_EQ(code[i].loc.line, code[i + 1].loc.line);
            }
        }
    }
}

TEST(Property, LbrContentIsAlwaysWithinCapacity)
{
    // Across randomized runs of a branchy corpus program, every
    // collected profile respects the configured LBR depth.
    BugSpec bug = corpus::bugById("squid1");
    for (std::size_t depth : {4u, 8u, 16u}) {
        LogEnhanceOptions opts;
        opts.lbrEntries = depth;
        LbrLogReport report =
            runLbrLog(bug.program, bug.failing, opts);
        ASSERT_TRUE(report.failed);
        EXPECT_LE(report.record.size(), depth);
        for (const auto &p : report.run.profiles)
            EXPECT_LE(p.lbr.size(), depth);
    }
}

TEST(Property, SchedulerSweepNeverWedgesTheVm)
{
    // Quantum/preemption sweeps over a lock-heavy two-thread
    // program: every combination either completes or deadlocks, and
    // the mutex invariant (final counter == total increments) holds
    // whenever the run completes.
    ProgramBuilder b("sweep");
    b.global("mutex", 1, {0}, true);
    b.global("counter", 1, {0}, true);
    b.func("main");
    b.movi(r1, 0);
    b.spawn(r9, "worker", r1);
    b.call("body");
    b.join(r9);
    b.loadg(r2, "counter");
    b.out(r2);
    b.halt();
    b.func("worker");
    b.call("body");
    b.ret();
    b.func("body");
    b.movi(r10, 0);
    b.movi(r11, 10);
    b.beginWhile(Cond::Lt, r10, r11);
    {
        b.lea(r12, "mutex");
        b.lockAddr(r12);
        b.loadg(r13, "counter");
        b.addi(r13, r13, 1);
        b.storeg("counter", 0, r13, r14);
        b.unlockAddr(r12);
        b.addi(r10, r10, 1);
    }
    b.endWhile();
    b.ret();
    ProgramPtr prog = b.build();

    for (std::uint32_t quantum : {1u, 3u, 7u, 25u, 200u}) {
        for (double p : {0.0, 0.3, 0.9}) {
            for (std::uint64_t seed : {1ull, 99ull, 12345ull}) {
                MachineOptions opts;
                opts.sched.quantum = quantum;
                opts.sched.preemptSharedProb = p;
                opts.sched.seed = seed;
                opts.maxSteps = 100000;
                Machine machine(prog, opts);
                RunResult result = machine.run();
                ASSERT_EQ(result.outcome, RunOutcome::Completed)
                    << "q=" << quantum << " p=" << p
                    << " seed=" << seed;
                ASSERT_EQ(result.output,
                          (std::vector<Word>{20}));
            }
        }
    }
}

TEST(Property, ProfilesAreByteIdenticalAcrossReruns)
{
    // Determinism at profile granularity: re-running a failing seed
    // reproduces the exact LBR/LCR snapshots.
    BugSpec bug1 = corpus::bugById("mozilla-js3");
    LcrLogReport a = runLcrLog(bug1.program, bug1.failing);
    BugSpec bug2 = corpus::bugById("mozilla-js3");
    LcrLogReport b2 = runLcrLog(bug2.program, bug2.failing);
    ASSERT_TRUE(a.failed);
    ASSERT_TRUE(b2.failed);
    ASSERT_EQ(a.record.size(), b2.record.size());
    for (std::size_t i = 0; i < a.record.size(); ++i) {
        EXPECT_EQ(a.record[i].pc, b2.record[i].pc);
        EXPECT_EQ(a.record[i].observed, b2.record[i].observed);
        EXPECT_EQ(a.record[i].store, b2.record[i].store);
    }
}

} // namespace
} // namespace stm
