/**
 * @file
 * Unit and concurrency tests for the content-addressed run cache
 * (exec/run_cache.hh): LRU eviction under a byte budget, shard
 * routing, bit-identical hit copies, oversize rejection, verify-mode
 * replay checking (including a deliberately poisoned entry), and
 * concurrent hits/inserts/evictions under the RunPool — the last is
 * the TSan lane's target.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/run_cache.hh"
#include "exec/run_pool.hh"
#include "program/builder.hh"
#include "program/fingerprint.hh"
#include "program/transform.hh"
#include "support/logging.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

/** Ensure the process-wide cache never leaks into other tests. */
struct GlobalCacheGuard
{
    ~GlobalCacheGuard() { configureRunCache(RunCacheMode::Off); }
};

/** A RunResult whose retained size is dominated by @p outputWords. */
RunResult
sizedResult(std::size_t outputWords, Word fill = 7)
{
    RunResult r;
    r.output.assign(outputWords, fill);
    return r;
}

RunKey
key(std::uint64_t seed)
{
    return RunKey{0x1234, 0x5678, seed};
}

/** A tiny program whose output depends on the scheduler seed. */
ProgramPtr
seededProgram()
{
    ProgramBuilder b("seeded");
    b.global("x", 1, {3});
    b.func("main");
    b.loadg(r1, "x");
    b.out(r1);
    b.halt();
    return b.build();
}

TEST(RunCache, HitReturnsABitIdenticalCopy)
{
    RunCache cache;
    RunResult in = sizedResult(16, 42);
    in.outcome = RunOutcome::ErrorLogged;
    in.failure = FailureInfo{RunOutcome::ErrorLogged, 1, 2, 3, "boom"};
    in.stats.userInstructions = 99;
    cache.insert(key(1), in);

    RunResult out;
    ASSERT_TRUE(cache.lookup(key(1), out));
    EXPECT_TRUE(out == in);
    EXPECT_FALSE(cache.lookup(key(2), out));

    StatGroup stats = cache.statsSnapshot();
    EXPECT_EQ(stats.value("hits"), 1u);
    EXPECT_EQ(stats.value("misses"), 1u);
    EXPECT_EQ(stats.value("inserts"), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(RunCache, ByteBudgetEvictsLeastRecentlyUsed)
{
    // One shard so the LRU order is global; a budget that holds
    // roughly three of the four entries we insert.
    RunCache::Options opts;
    opts.shards = 1;
    opts.maxBytes = 3 * approxRunResultBytes(sizedResult(256)) + 64;
    RunCache cache(opts);

    for (std::uint64_t s = 0; s < 3; ++s)
        cache.insert(key(s), sizedResult(256));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_LE(cache.bytes(), opts.maxBytes);

    // Touch entry 0 so entry 1 is the least recently used...
    RunResult out;
    ASSERT_TRUE(cache.lookup(key(0), out));
    // ...then overflow the budget: 1 must go, 0 and 2 must stay.
    cache.insert(key(3), sizedResult(256));
    EXPECT_LE(cache.bytes(), opts.maxBytes);
    EXPECT_TRUE(cache.lookup(key(0), out));
    EXPECT_FALSE(cache.lookup(key(1), out));
    EXPECT_TRUE(cache.lookup(key(2), out));
    EXPECT_TRUE(cache.lookup(key(3), out));
    EXPECT_GE(cache.statsSnapshot().value("evictions"), 1u);
}

TEST(RunCache, OversizeResultsAreNeverInserted)
{
    RunCache::Options opts;
    opts.shards = 2;
    opts.maxBytes = 1024; // 512 per shard
    RunCache cache(opts);
    cache.insert(key(1), sizedResult(4096));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.statsSnapshot().value("oversize"), 1u);
}

TEST(RunCache, ShardsPartitionTheKeySpace)
{
    RunCache::Options opts;
    opts.shards = 4;
    RunCache cache(opts);
    for (std::uint64_t s = 0; s < 64; ++s)
        cache.insert(key(s), sizedResult(4, static_cast<Word>(s)));
    EXPECT_EQ(cache.size(), 64u);
    for (std::uint64_t s = 0; s < 64; ++s) {
        RunResult out;
        ASSERT_TRUE(cache.lookup(key(s), out)) << s;
        EXPECT_EQ(out.output[0], static_cast<Word>(s));
    }
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
}

TEST(RunCache, ParseModeAcceptsTheThreeSpellings)
{
    EXPECT_EQ(parseRunCacheMode("off"), RunCacheMode::Off);
    EXPECT_EQ(parseRunCacheMode("on"), RunCacheMode::On);
    EXPECT_EQ(parseRunCacheMode("verify"), RunCacheMode::Verify);
    EXPECT_THROW(parseRunCacheMode("bogus"), FatalError);
}

TEST(RunCache, MemoizedRunMatchesDirectExecutionWithCacheOff)
{
    GlobalCacheGuard guard;
    configureRunCache(RunCacheMode::Off);
    EXPECT_EQ(globalRunCache(), nullptr);

    ProgramPtr prog = seededProgram();
    MachineOptions opts;
    RunResult direct = Machine(prog, opts).run();
    RunResult memo =
        memoizedRun(prog, nullptr, fingerprintProgram(*prog),
                    fingerprintMachineOptions(opts), opts);
    EXPECT_TRUE(direct == memo);
}

TEST(RunCache, MemoizedRunServesHitsAndCountsThem)
{
    GlobalCacheGuard guard;
    configureRunCache(RunCacheMode::On);
    RunCache *cache = globalRunCache();
    ASSERT_NE(cache, nullptr);

    ProgramPtr prog = seededProgram();
    MachineOptions opts;
    const std::uint64_t progFp = fingerprintProgram(*prog);
    const std::uint64_t optsFp = fingerprintMachineOptions(opts);
    RunResult first = memoizedRun(prog, nullptr, progFp, optsFp, opts);
    RunResult second =
        memoizedRun(prog, nullptr, progFp, optsFp, opts);
    EXPECT_TRUE(first == second);
    StatGroup stats = cache->statsSnapshot();
    EXPECT_EQ(stats.value("hits"), 1u);
    EXPECT_EQ(stats.value("misses"), 1u);
}

TEST(RunCache, VerifyModeReplaysHitsAndAcceptsHonestEntries)
{
    GlobalCacheGuard guard;
    configureRunCache(RunCacheMode::Verify);
    RunCache *cache = globalRunCache();
    ASSERT_NE(cache, nullptr);
    ASSERT_TRUE(cache->verifyMode());

    ProgramPtr prog = seededProgram();
    MachineOptions opts;
    const std::uint64_t progFp = fingerprintProgram(*prog);
    const std::uint64_t optsFp = fingerprintMachineOptions(opts);
    RunResult first = memoizedRun(prog, nullptr, progFp, optsFp, opts);
    RunResult second =
        memoizedRun(prog, nullptr, progFp, optsFp, opts);
    EXPECT_TRUE(first == second);
    EXPECT_EQ(cache->statsSnapshot().value("verified"), 1u);
}

TEST(RunCache, VerifyModeDetectsAPoisonedEntry)
{
    GlobalCacheGuard guard;
    configureRunCache(RunCacheMode::Verify);
    RunCache *cache = globalRunCache();
    ASSERT_NE(cache, nullptr);

    ProgramPtr prog = seededProgram();
    MachineOptions opts;
    const std::uint64_t progFp = fingerprintProgram(*prog);
    const std::uint64_t optsFp = fingerprintMachineOptions(opts);

    // Plant a wrong result under the exact key memoizedRun will
    // compute — a stand-in for a fingerprint collision or memory
    // corruption. The verify replay must catch it.
    RunResult poisoned = sizedResult(3, 0xBAD);
    cache->insert(RunKey{progFp, optsFp, opts.sched.seed}, poisoned);
    EXPECT_THROW(memoizedRun(prog, nullptr, progFp, optsFp, opts),
                 FatalError);
}

TEST(RunCache, ConcurrentHitsInsertsAndEvictionsAreRaceFree)
{
    // The TSan lane's target: many workers hammering one small global
    // cache through memoizedRun, with repeated seeds (hits racing
    // inserts) and a budget tight enough to force evictions.
    GlobalCacheGuard guard;
    configureRunCache(RunCacheMode::On, 64 * 1024);
    RunCache *cache = globalRunCache();
    ASSERT_NE(cache, nullptr);

    ProgramPtr prog = seededProgram();
    const std::uint64_t progFp = fingerprintProgram(*prog);
    auto makeOpts = [](std::uint64_t i) {
        MachineOptions opts;
        opts.sched.seed = i % 16; // repeated keys: hits race inserts
        return opts;
    };
    const std::uint64_t optsFp =
        fingerprintMachineOptions(makeOpts(0));

    RunPool pool(4);
    std::vector<RunResult> results;
    pool.runOrdered(
        0, 256,
        [&](std::uint64_t i) {
            return memoizedRun(prog, nullptr, progFp, optsFp,
                               makeOpts(i));
        },
        [&](std::uint64_t, RunResult &&run) {
            results.push_back(std::move(run));
            return true;
        });

    ASSERT_EQ(results.size(), 256u);
    // Same seed => bit-identical result, cached or not.
    for (std::size_t i = 16; i < results.size(); ++i)
        EXPECT_TRUE(results[i] == results[i % 16]) << i;
    StatGroup stats = cache->statsSnapshot();
    EXPECT_EQ(stats.value("hits") + stats.value("misses"), 256u);
    EXPECT_GE(stats.value("hits"), 1u);
}

} // namespace
} // namespace stm
