/**
 * @file
 * Unit tests for the support library: the ring buffer (the data
 * structure backing LBR/LCR), logging helpers, deterministic PRNG,
 * statistics, the CRC32, and the lock-free transport primitives
 * behind the fleet collector (MPSC sequence ring, frame arena,
 * fingerprint set).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/checksum.hh"
#include "support/fingerprint_set.hh"
#include "support/frame_arena.hh"
#include "support/logging.hh"
#include "support/mpsc_ring.hh"
#include "support/random.hh"
#include "support/ring_buffer.hh"
#include "support/stats.hh"

namespace stm
{
namespace
{

// ---- RingBuffer ----------------------------------------------------------

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.full());
}

TEST(RingBuffer, PushGrowsUntilCapacity)
{
    RingBuffer<int> ring(3);
    ring.push(1);
    EXPECT_EQ(ring.size(), 1u);
    ring.push(2);
    ring.push(3);
    EXPECT_TRUE(ring.full());
    ring.push(4);
    EXPECT_EQ(ring.size(), 3u);
}

TEST(RingBuffer, NewestFirstOrdering)
{
    RingBuffer<int> ring(3);
    ring.push(10);
    ring.push(20);
    ring.push(30);
    EXPECT_EQ(ring.newest(0), 30);
    EXPECT_EQ(ring.newest(1), 20);
    EXPECT_EQ(ring.newest(2), 10);
}

TEST(RingBuffer, OldestEvictedOnWrap)
{
    RingBuffer<int> ring(3);
    for (int i = 1; i <= 5; ++i)
        ring.push(i);
    EXPECT_EQ(ring.newest(0), 5);
    EXPECT_EQ(ring.newest(1), 4);
    EXPECT_EQ(ring.newest(2), 3);
    EXPECT_EQ(ring.oldest(0), 3);
}

TEST(RingBuffer, SnapshotNewestFirst)
{
    RingBuffer<int> ring(4);
    ring.push(1);
    ring.push(2);
    ring.push(3);
    auto snap = ring.snapshotNewestFirst();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0], 3);
    EXPECT_EQ(snap[2], 1);
}

TEST(RingBuffer, SnapshotOldestFirstIsReverse)
{
    RingBuffer<int> ring(4);
    for (int i = 0; i < 6; ++i)
        ring.push(i);
    auto newest = ring.snapshotNewestFirst();
    auto oldest = ring.snapshotOldestFirst();
    ASSERT_EQ(newest.size(), oldest.size());
    for (std::size_t i = 0; i < newest.size(); ++i)
        EXPECT_EQ(newest[i], oldest[oldest.size() - 1 - i]);
}

TEST(RingBuffer, ClearResets)
{
    RingBuffer<int> ring(2);
    ring.push(1);
    ring.push(2);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    ring.push(7);
    EXPECT_EQ(ring.newest(0), 7);
}

TEST(RingBuffer, ZeroCapacityDropsEverything)
{
    RingBuffer<int> ring(0);
    ring.push(1);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, CapacityOneWrapsEveryPush)
{
    // The degenerate ring: head_ wraps to 0 on every push, each push
    // is an eviction once full, and newest == oldest throughout.
    RingBuffer<int> ring(1);
    EXPECT_TRUE(ring.empty());
    for (int i = 1; i <= 50; ++i) {
        ring.push(i);
        EXPECT_TRUE(ring.full());
        EXPECT_EQ(ring.size(), 1u);
        EXPECT_EQ(ring.newest(0), i);
        EXPECT_EQ(ring.oldest(0), i);
        auto newest = ring.snapshotNewestFirst();
        auto oldest = ring.snapshotOldestFirst();
        ASSERT_EQ(newest.size(), 1u);
        ASSERT_EQ(oldest.size(), 1u);
        EXPECT_EQ(newest[0], i);
        EXPECT_EQ(oldest[0], i);
    }
    ring.clear();
    EXPECT_TRUE(ring.empty());
    ring.push(99);
    EXPECT_EQ(ring.newest(0), 99);
}

/** Property: after any push sequence, size = min(pushes, capacity)
 *  and newest(i) returns the (i+1)-th most recent push. */
class RingBufferSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RingBufferSweep, RetainsTheLastKRecords)
{
    const int capacity = GetParam();
    RingBuffer<int> ring(capacity);
    const int pushes = 100;
    for (int i = 0; i < pushes; ++i)
        ring.push(i);
    EXPECT_EQ(ring.size(), static_cast<std::size_t>(
                               std::min(pushes, capacity)));
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.newest(i), pushes - 1 - static_cast<int>(i));
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 15, 16, 17,
                                           32, 100, 101));

// ---- logging ------------------------------------------------------------

TEST(Logging, StrfmtSubstitutesInOrder)
{
    EXPECT_EQ(strfmt("a={} b={}", 1, "x"), "a=1 b=x");
}

TEST(Logging, StrfmtIgnoresExtraPlaceholders)
{
    EXPECT_EQ(strfmt("v={}", 1), "v=1");
    EXPECT_EQ(strfmt("none"), "none");
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("broken {}", 1), PanicError);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad input {}", "x"), FatalError);
}

TEST(Logging, PanicMessageContainsText)
{
    try {
        panic("value was {}", 42);
        FAIL();
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 42"),
                  std::string::npos);
    }
}

/** Capture everything written to std::cerr for one scope. */
class CerrCapture
{
  public:
    CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
    ~CerrCapture() { std::cerr.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

  private:
    std::ostringstream buffer_;
    std::streambuf *old_;
};

/** Restore the log level on every exit path. */
class LogLevelGuard
{
  public:
    explicit LogLevelGuard(LogLevel level)
        : previous_(setLogLevel(level))
    {
    }
    ~LogLevelGuard() { setLogLevel(previous_); }

  private:
    LogLevel previous_;
};

TEST(Logging, InfoLevelPrintsWarnAndInform)
{
    LogLevelGuard level(LogLevel::Info);
    CerrCapture capture;
    warn("w{}", 1);
    inform("i{}", 2);
    EXPECT_NE(capture.text().find("warn: w1"), std::string::npos);
    EXPECT_NE(capture.text().find("info: i2"), std::string::npos);
}

TEST(Logging, WarnLevelSuppressesInform)
{
    LogLevelGuard level(LogLevel::Warn);
    CerrCapture capture;
    warn("keep");
    inform("drop");
    EXPECT_NE(capture.text().find("warn: keep"), std::string::npos);
    EXPECT_EQ(capture.text().find("drop"), std::string::npos);
}

TEST(Logging, SilentLevelSuppressesEverything)
{
    LogLevelGuard level(LogLevel::Silent);
    CerrCapture capture;
    warn("w");
    inform("i");
    EXPECT_TRUE(capture.text().empty());
}

TEST(Logging, ErrorsIgnoreTheLogLevel)
{
    LogLevelGuard level(LogLevel::Silent);
    EXPECT_THROW(panic("still thrown"), PanicError);
    EXPECT_THROW(fatal("still thrown"), FatalError);
}

TEST(Logging, SetLogLevelReturnsPrevious)
{
    LogLevel original = logLevel();
    EXPECT_EQ(setLogLevel(LogLevel::Silent), original);
    EXPECT_EQ(setLogLevel(original), LogLevel::Silent);
    EXPECT_EQ(logLevel(), original);
}

// ---- Pcg32 ----------------------------------------------------------------

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BoundedStaysInRange)
{
    Pcg32 rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(10), 10u);
}

TEST(Pcg32, BoundedOneAlwaysZero)
{
    Pcg32 rng(7);
    EXPECT_EQ(rng.nextBounded(1), 0u);
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(9);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Pcg32, BernoulliRespectsProbabilityRoughly)
{
    Pcg32 rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Pcg32, GeometricMeanApproximatelyRight)
{
    Pcg32 rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextGeometric(100.0);
    EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Pcg32, GeometricAtLeastOne)
{
    Pcg32 rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.nextGeometric(3.0), 1u);
    EXPECT_EQ(rng.nextGeometric(1.0), 1u);
}

// ---- stats ------------------------------------------------------------------

TEST(Stats, CounterIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupCreatesLazily)
{
    StatGroup group("cache");
    EXPECT_EQ(group.value("hits"), 0u);
    ++group.counter("hits");
    EXPECT_EQ(group.value("hits"), 1u);
}

TEST(Stats, GroupDumpFormat)
{
    StatGroup group("bus");
    group.counter("reads") += 3;
    std::ostringstream os;
    group.dump(os);
    EXPECT_EQ(os.str(), "bus.reads 3\n");
}

TEST(Stats, GroupReset)
{
    StatGroup group("g");
    group.counter("a") += 2;
    group.reset();
    EXPECT_EQ(group.value("a"), 0u);
}

TEST(Stats, EmptyGroupToJson)
{
    StatGroup group("empty");
    EXPECT_EQ(group.toJson(),
              "{\"name\": \"empty\", \"counters\": {}, "
              "\"gauges\": {}}");
}

TEST(Stats, ToJsonEscapesQuotesAndBackslashes)
{
    StatGroup group("we\"ird\\name");
    group.counter("ke\"y") += 1;
    group.counter("back\\slash") += 2;
    std::string json = group.toJson();
    EXPECT_NE(json.find("\"we\\\"ird\\\\name\""), std::string::npos);
    EXPECT_NE(json.find("\"ke\\\"y\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"back\\\\slash\": 2"), std::string::npos);
    // No raw (unescaped) quote may survive inside any name.
    EXPECT_EQ(json.find("we\"ird"), std::string::npos);
}

TEST(Stats, ToJsonListsCountersAndGauges)
{
    StatGroup group("g");
    group.counter("hits") += 3;
    group.gauge("rate").set(1.5);
    std::string json = group.toJson();
    EXPECT_NE(json.find("\"hits\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"rate\": 1.5"), std::string::npos);
}

// ---- Checksum ------------------------------------------------------------

TEST(Checksum, MatchesTheIeeeCheckValue)
{
    // The standard CRC-32/IEEE check vector.
    const char *msg = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(msg), 9),
              0xCBF43926u);
}

TEST(Checksum, SplitUpdatesMatchOneShot)
{
    // Any split of the input must give the same CRC as one pass; the
    // sweep crosses the slicing-by-8 fast path and its byte-wise tail
    // in every phase, so the two factorings are checked against each
    // other for all alignments.
    std::vector<std::uint8_t> data(40);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 37 + 11);
    for (std::size_t len = 0; len <= data.size(); ++len) {
        std::uint32_t oneShot = crc32(data.data(), len);
        for (std::size_t cut = 0; cut <= len; ++cut) {
            std::uint32_t c = crc32Init();
            c = crc32Update(c, data.data(), cut);
            c = crc32Update(c, data.data() + cut, len - cut);
            EXPECT_EQ(crc32Final(c), oneShot)
                << "len " << len << " cut " << cut;
        }
    }
}

// ---- MpscRing ------------------------------------------------------------

TEST(MpscRing, RoundsCapacityUpToAPowerOfTwo)
{
    EXPECT_EQ(MpscRing<int>(0).capacity(), 1u);
    EXPECT_EQ(MpscRing<int>(1).capacity(), 1u);
    EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
    EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
}

TEST(MpscRing, FullAndEmptyBoundariesAreExact)
{
    MpscRing<int> ring(4);
    int out = -1;
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.tryPop(&out));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i)) << i;
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_FALSE(ring.tryPush(99)); // full: policy decision is the caller's
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.tryPop(&out));
        EXPECT_EQ(out, i); // FIFO
    }
    EXPECT_FALSE(ring.tryPop(&out));
    EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, WrapsAtEveryCapacity)
{
    // Fill-to-full / drain-to-empty laps at every small power-of-two
    // capacity: the head and tail tickets cross the wrap point dozens
    // of times and every popped value must still come out in push
    // order. This is the test that catches sequence-encoding
    // collisions (the classic `ticket + 1` scheme fails at capacity 1).
    for (std::size_t cap : {1, 2, 4, 8, 16}) {
        MpscRing<std::uint64_t> ring(cap);
        std::uint64_t next = 0;
        std::uint64_t expect = 0;
        for (int lap = 0; lap < 50; ++lap) {
            // Vary the burst size so laps start at every ring phase.
            std::size_t burst = lap % cap + 1;
            for (std::size_t i = 0; i < burst; ++i)
                ASSERT_TRUE(ring.tryPush(next++))
                    << "cap " << cap << " lap " << lap;
            std::uint64_t out = 0;
            for (std::size_t i = 0; i < burst; ++i) {
                ASSERT_TRUE(ring.tryPop(&out));
                ASSERT_EQ(out, expect++) << "cap " << cap;
            }
        }
        EXPECT_TRUE(ring.empty());
    }
}

TEST(MpscRing, CapacityOneAlternatesPushAndPop)
{
    MpscRing<int> ring(1);
    ASSERT_EQ(ring.capacity(), 1u);
    int out = -1;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(ring.tryPush(i));
        // A second push must fail, not overwrite the unconsumed slot.
        ASSERT_FALSE(ring.tryPush(i + 1000));
        ASSERT_TRUE(ring.tryPop(&out));
        ASSERT_EQ(out, i);
        ASSERT_FALSE(ring.tryPop(&out));
    }
}

TEST(MpscRing, ResidentRecordSurvivesManyLaps)
{
    // Keep one record resident while the ring laps around it: the
    // recycled-sequence bookkeeping must keep the old record intact
    // until its own pop.
    MpscRing<std::uint64_t> ring(4);
    ASSERT_TRUE(ring.tryPush(0));
    std::uint64_t next = 1;
    std::uint64_t expect = 0;
    std::uint64_t out = 0;
    for (int step = 0; step < 200; ++step) {
        ASSERT_TRUE(ring.tryPush(next++));
        ASSERT_TRUE(ring.tryPop(&out));
        ASSERT_EQ(out, expect++);
    }
    ASSERT_TRUE(ring.tryPop(&out));
    EXPECT_EQ(out, expect);
}

/** Hammer @p ring with @p producers threads and pop from the calling
 * thread, asserting per-producer FIFO order and total conservation. */
void
hammerRing(MpscRing<std::uint64_t> &ring, unsigned producers,
           std::uint64_t per_producer)
{
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&ring, &go, p, per_producer] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            for (std::uint64_t i = 0; i < per_producer; ++i) {
                std::uint64_t v = (std::uint64_t{p} << 32) | i;
                while (!ring.tryPush(v))
                    std::this_thread::yield();
            }
        });
    }
    go.store(true, std::memory_order_release);
    std::vector<std::uint64_t> nextOf(producers, 0);
    std::uint64_t seen = 0;
    std::uint64_t out = 0;
    while (seen < producers * per_producer) {
        if (!ring.tryPop(&out)) {
            std::this_thread::yield();
            continue;
        }
        std::uint64_t p = out >> 32;
        std::uint64_t i = out & 0xFFFFFFFFu;
        ASSERT_LT(p, producers);
        // Per-producer FIFO: producer p's records arrive in order,
        // none lost, none duplicated.
        ASSERT_EQ(i, nextOf[p]) << "producer " << p;
        ++nextOf[p];
        ++seen;
    }
    for (auto &t : threads)
        t.join();
    EXPECT_FALSE(ring.tryPop(&out)); // conservation: nothing extra
    EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, ConcurrentProducersConserveEveryRecord)
{
    MpscRing<std::uint64_t> ring(64);
    hammerRing(ring, 4, 10000);
}

TEST(MpscRing, ConcurrentProducersAtCapacityOne)
{
    // The degenerate ring is all contention: every push fights for
    // the single slot while the consumer recycles it.
    MpscRing<std::uint64_t> ring(1);
    hammerRing(ring, 2, 3000);
}

// ---- FrameArena ----------------------------------------------------------

TEST(FrameArena, BumpsWithinARegionAndTracksInflight)
{
    FrameArena arena(16384);
    EXPECT_EQ(arena.regionSize(), 4096u);
    std::uint8_t *a = arena.reserve(100);
    ASSERT_NE(a, nullptr);
    std::uint8_t *b = arena.reserve(50);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b, a + 100); // contiguous bump within one region
    EXPECT_EQ(arena.inflightBytes(), 150u);
    EXPECT_TRUE(arena.owns(a));
    EXPECT_TRUE(arena.owns(b));
    arena.complete(a, 100);
    arena.complete(b, 50);
    EXPECT_EQ(arena.inflightBytes(), 0u);
}

TEST(FrameArena, RefusesFramesLargerThanARegion)
{
    FrameArena arena(16384);
    EXPECT_EQ(arena.reserve(4097), nullptr); // heap detour, not policy
    EXPECT_NE(arena.reserve(4096), nullptr); // exactly a region fits
}

TEST(FrameArena, UnreserveRollsBackTheLastReservation)
{
    FrameArena arena(16384);
    std::uint8_t *a = arena.reserve(64);
    ASSERT_NE(a, nullptr);
    std::uint8_t *b = arena.reserve(32);
    ASSERT_NE(b, nullptr);
    arena.unreserve(b, 32);
    EXPECT_EQ(arena.inflightBytes(), 64u);
    // The rolled-back bytes are handed out again immediately.
    EXPECT_EQ(arena.reserve(32), b);
}

TEST(FrameArena, RegionsRecycleOnlyAfterCompletion)
{
    FrameArena arena(16384);
    std::uint8_t *frames[FrameArena::kRegions];
    for (auto &f : frames) {
        f = arena.reserve(4096); // each fills one region exactly
        ASSERT_NE(f, nullptr);
    }
    // Every region is in flight: backpressure, never overwrite.
    EXPECT_EQ(arena.reserve(1), nullptr);
    // Completing the oldest region reopens exactly its bytes...
    arena.complete(frames[0], 4096);
    EXPECT_EQ(arena.reserve(4096), frames[0]);
    // ...and the next region over is still protected.
    EXPECT_EQ(arena.reserve(1), nullptr);
}

TEST(FrameArena, OwnsRejectsForeignPointers)
{
    FrameArena arena(16384);
    std::uint8_t local = 0;
    EXPECT_FALSE(arena.owns(&local));
    std::uint8_t *p = arena.reserve(8);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(arena.owns(p));
    EXPECT_TRUE(arena.owns(p + 7));
}

// ---- FingerprintSet ------------------------------------------------------

TEST(FingerprintSet, InsertIsExactlyOnceSequentially)
{
    FingerprintSet set(16);
    EXPECT_FALSE(set.contains(7));
    EXPECT_TRUE(set.insert(7));
    EXPECT_FALSE(set.insert(7));
    EXPECT_TRUE(set.contains(7));
    EXPECT_EQ(set.size(), 1u);
}

TEST(FingerprintSet, StoresTheReservedEncodings)
{
    // 0 and ~0 are the empty/tombstone slot encodings; they must
    // still be storable fingerprints (side flags).
    FingerprintSet set;
    const std::uint64_t ones = ~std::uint64_t{0};
    EXPECT_TRUE(set.insert(0));
    EXPECT_FALSE(set.insert(0));
    EXPECT_TRUE(set.contains(0));
    EXPECT_TRUE(set.insert(ones));
    EXPECT_FALSE(set.insert(ones));
    EXPECT_TRUE(set.contains(ones));
    EXPECT_EQ(set.size(), 2u);
    set.erase(0);
    EXPECT_FALSE(set.contains(0));
    EXPECT_TRUE(set.insert(0)); // erased values can come back
}

TEST(FingerprintSet, EraseTombstonesAndAllowsReinsert)
{
    FingerprintSet set(16);
    for (std::uint64_t fp = 1; fp <= 5; ++fp)
        ASSERT_TRUE(set.insert(fp * 1000));
    set.erase(3000);
    EXPECT_FALSE(set.contains(3000));
    EXPECT_TRUE(set.contains(2000)); // probes walk past tombstones
    EXPECT_EQ(set.size(), 4u);
    EXPECT_TRUE(set.insert(3000));
    EXPECT_TRUE(set.contains(3000));
    EXPECT_EQ(set.size(), 5u);
}

TEST(FingerprintSet, GrowthPreservesEveryEntry)
{
    FingerprintSet set(16);
    constexpr std::uint64_t kN = 5000; // forces many doublings from 16
    auto fpOf = [](std::uint64_t i) {
        return i * 0x9E3779B97F4A7C15ull + 1;
    };
    for (std::uint64_t i = 1; i <= kN; ++i)
        ASSERT_TRUE(set.insert(fpOf(i))) << i;
    EXPECT_EQ(set.size(), kN);
    EXPECT_GT(set.capacity(), std::size_t{16});
    for (std::uint64_t i = 1; i <= kN; ++i) {
        ASSERT_TRUE(set.contains(fpOf(i))) << i;
        ASSERT_FALSE(set.insert(fpOf(i))) << i; // still a duplicate
    }
    EXPECT_EQ(set.size(), kN);
}

TEST(FingerprintSet, ConcurrentInsertersAgreeOnExactlyOnce)
{
    // Every thread inserts the same value set from a different
    // starting phase, so the same fingerprint is contended
    // constantly, across several quiesced rehashes. Exactly one
    // inserter of each value may see `true`.
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kValues = 4096;
    FingerprintSet set(16);
    std::atomic<std::uint64_t> wins{0};
    std::atomic<bool> go{false};
    auto fpOf = [](std::uint64_t i) {
        return (i + 1) * 0x2545F4914F6CDD1Dull;
    };
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            std::uint64_t start = t * (kValues / kThreads);
            std::uint64_t local = 0;
            for (std::uint64_t i = 0; i < kValues; ++i) {
                if (set.insert(fpOf((start + i) % kValues)))
                    ++local;
            }
            wins.fetch_add(local, std::memory_order_relaxed);
        });
    }
    go.store(true, std::memory_order_release);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(wins.load(), kValues);
    EXPECT_EQ(set.size(), kValues);
    for (std::uint64_t i = 0; i < kValues; ++i)
        ASSERT_TRUE(set.contains(fpOf(i))) << i;
}

} // namespace
} // namespace stm
