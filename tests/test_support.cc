/**
 * @file
 * Unit tests for the support library: the ring buffer (the data
 * structure backing LBR/LCR), logging helpers, deterministic PRNG,
 * and statistics.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/random.hh"
#include "support/ring_buffer.hh"
#include "support/stats.hh"

namespace stm
{
namespace
{

// ---- RingBuffer ----------------------------------------------------------

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.full());
}

TEST(RingBuffer, PushGrowsUntilCapacity)
{
    RingBuffer<int> ring(3);
    ring.push(1);
    EXPECT_EQ(ring.size(), 1u);
    ring.push(2);
    ring.push(3);
    EXPECT_TRUE(ring.full());
    ring.push(4);
    EXPECT_EQ(ring.size(), 3u);
}

TEST(RingBuffer, NewestFirstOrdering)
{
    RingBuffer<int> ring(3);
    ring.push(10);
    ring.push(20);
    ring.push(30);
    EXPECT_EQ(ring.newest(0), 30);
    EXPECT_EQ(ring.newest(1), 20);
    EXPECT_EQ(ring.newest(2), 10);
}

TEST(RingBuffer, OldestEvictedOnWrap)
{
    RingBuffer<int> ring(3);
    for (int i = 1; i <= 5; ++i)
        ring.push(i);
    EXPECT_EQ(ring.newest(0), 5);
    EXPECT_EQ(ring.newest(1), 4);
    EXPECT_EQ(ring.newest(2), 3);
    EXPECT_EQ(ring.oldest(0), 3);
}

TEST(RingBuffer, SnapshotNewestFirst)
{
    RingBuffer<int> ring(4);
    ring.push(1);
    ring.push(2);
    ring.push(3);
    auto snap = ring.snapshotNewestFirst();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0], 3);
    EXPECT_EQ(snap[2], 1);
}

TEST(RingBuffer, SnapshotOldestFirstIsReverse)
{
    RingBuffer<int> ring(4);
    for (int i = 0; i < 6; ++i)
        ring.push(i);
    auto newest = ring.snapshotNewestFirst();
    auto oldest = ring.snapshotOldestFirst();
    ASSERT_EQ(newest.size(), oldest.size());
    for (std::size_t i = 0; i < newest.size(); ++i)
        EXPECT_EQ(newest[i], oldest[oldest.size() - 1 - i]);
}

TEST(RingBuffer, ClearResets)
{
    RingBuffer<int> ring(2);
    ring.push(1);
    ring.push(2);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    ring.push(7);
    EXPECT_EQ(ring.newest(0), 7);
}

TEST(RingBuffer, ZeroCapacityDropsEverything)
{
    RingBuffer<int> ring(0);
    ring.push(1);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, CapacityOneWrapsEveryPush)
{
    // The degenerate ring: head_ wraps to 0 on every push, each push
    // is an eviction once full, and newest == oldest throughout.
    RingBuffer<int> ring(1);
    EXPECT_TRUE(ring.empty());
    for (int i = 1; i <= 50; ++i) {
        ring.push(i);
        EXPECT_TRUE(ring.full());
        EXPECT_EQ(ring.size(), 1u);
        EXPECT_EQ(ring.newest(0), i);
        EXPECT_EQ(ring.oldest(0), i);
        auto newest = ring.snapshotNewestFirst();
        auto oldest = ring.snapshotOldestFirst();
        ASSERT_EQ(newest.size(), 1u);
        ASSERT_EQ(oldest.size(), 1u);
        EXPECT_EQ(newest[0], i);
        EXPECT_EQ(oldest[0], i);
    }
    ring.clear();
    EXPECT_TRUE(ring.empty());
    ring.push(99);
    EXPECT_EQ(ring.newest(0), 99);
}

/** Property: after any push sequence, size = min(pushes, capacity)
 *  and newest(i) returns the (i+1)-th most recent push. */
class RingBufferSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RingBufferSweep, RetainsTheLastKRecords)
{
    const int capacity = GetParam();
    RingBuffer<int> ring(capacity);
    const int pushes = 100;
    for (int i = 0; i < pushes; ++i)
        ring.push(i);
    EXPECT_EQ(ring.size(), static_cast<std::size_t>(
                               std::min(pushes, capacity)));
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.newest(i), pushes - 1 - static_cast<int>(i));
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 15, 16, 17,
                                           32, 100, 101));

// ---- logging ------------------------------------------------------------

TEST(Logging, StrfmtSubstitutesInOrder)
{
    EXPECT_EQ(strfmt("a={} b={}", 1, "x"), "a=1 b=x");
}

TEST(Logging, StrfmtIgnoresExtraPlaceholders)
{
    EXPECT_EQ(strfmt("v={}", 1), "v=1");
    EXPECT_EQ(strfmt("none"), "none");
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("broken {}", 1), PanicError);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad input {}", "x"), FatalError);
}

TEST(Logging, PanicMessageContainsText)
{
    try {
        panic("value was {}", 42);
        FAIL();
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 42"),
                  std::string::npos);
    }
}

/** Capture everything written to std::cerr for one scope. */
class CerrCapture
{
  public:
    CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
    ~CerrCapture() { std::cerr.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

  private:
    std::ostringstream buffer_;
    std::streambuf *old_;
};

/** Restore the log level on every exit path. */
class LogLevelGuard
{
  public:
    explicit LogLevelGuard(LogLevel level)
        : previous_(setLogLevel(level))
    {
    }
    ~LogLevelGuard() { setLogLevel(previous_); }

  private:
    LogLevel previous_;
};

TEST(Logging, InfoLevelPrintsWarnAndInform)
{
    LogLevelGuard level(LogLevel::Info);
    CerrCapture capture;
    warn("w{}", 1);
    inform("i{}", 2);
    EXPECT_NE(capture.text().find("warn: w1"), std::string::npos);
    EXPECT_NE(capture.text().find("info: i2"), std::string::npos);
}

TEST(Logging, WarnLevelSuppressesInform)
{
    LogLevelGuard level(LogLevel::Warn);
    CerrCapture capture;
    warn("keep");
    inform("drop");
    EXPECT_NE(capture.text().find("warn: keep"), std::string::npos);
    EXPECT_EQ(capture.text().find("drop"), std::string::npos);
}

TEST(Logging, SilentLevelSuppressesEverything)
{
    LogLevelGuard level(LogLevel::Silent);
    CerrCapture capture;
    warn("w");
    inform("i");
    EXPECT_TRUE(capture.text().empty());
}

TEST(Logging, ErrorsIgnoreTheLogLevel)
{
    LogLevelGuard level(LogLevel::Silent);
    EXPECT_THROW(panic("still thrown"), PanicError);
    EXPECT_THROW(fatal("still thrown"), FatalError);
}

TEST(Logging, SetLogLevelReturnsPrevious)
{
    LogLevel original = logLevel();
    EXPECT_EQ(setLogLevel(LogLevel::Silent), original);
    EXPECT_EQ(setLogLevel(original), LogLevel::Silent);
    EXPECT_EQ(logLevel(), original);
}

// ---- Pcg32 ----------------------------------------------------------------

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BoundedStaysInRange)
{
    Pcg32 rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(10), 10u);
}

TEST(Pcg32, BoundedOneAlwaysZero)
{
    Pcg32 rng(7);
    EXPECT_EQ(rng.nextBounded(1), 0u);
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(9);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Pcg32, BernoulliRespectsProbabilityRoughly)
{
    Pcg32 rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Pcg32, GeometricMeanApproximatelyRight)
{
    Pcg32 rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextGeometric(100.0);
    EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Pcg32, GeometricAtLeastOne)
{
    Pcg32 rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.nextGeometric(3.0), 1u);
    EXPECT_EQ(rng.nextGeometric(1.0), 1u);
}

// ---- stats ------------------------------------------------------------------

TEST(Stats, CounterIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupCreatesLazily)
{
    StatGroup group("cache");
    EXPECT_EQ(group.value("hits"), 0u);
    ++group.counter("hits");
    EXPECT_EQ(group.value("hits"), 1u);
}

TEST(Stats, GroupDumpFormat)
{
    StatGroup group("bus");
    group.counter("reads") += 3;
    std::ostringstream os;
    group.dump(os);
    EXPECT_EQ(os.str(), "bus.reads 3\n");
}

TEST(Stats, GroupReset)
{
    StatGroup group("g");
    group.counter("a") += 2;
    group.reset();
    EXPECT_EQ(group.value("a"), 0u);
}

TEST(Stats, EmptyGroupToJson)
{
    StatGroup group("empty");
    EXPECT_EQ(group.toJson(),
              "{\"name\": \"empty\", \"counters\": {}, "
              "\"gauges\": {}}");
}

TEST(Stats, ToJsonEscapesQuotesAndBackslashes)
{
    StatGroup group("we\"ird\\name");
    group.counter("ke\"y") += 1;
    group.counter("back\\slash") += 2;
    std::string json = group.toJson();
    EXPECT_NE(json.find("\"we\\\"ird\\\\name\""), std::string::npos);
    EXPECT_NE(json.find("\"ke\\\"y\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"back\\\\slash\": 2"), std::string::npos);
    // No raw (unescaped) quote may survive inside any name.
    EXPECT_EQ(json.find("we\"ird"), std::string::npos);
}

TEST(Stats, ToJsonListsCountersAndGauges)
{
    StatGroup group("g");
    group.counter("hits") += 3;
    group.gauge("rate").set(1.5);
    std::string json = group.toJson();
    EXPECT_NE(json.find("\"hits\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"rate\": 1.5"), std::string::npos);
}

} // namespace
} // namespace stm
