/**
 * @file
 * Unit tests for the instrumentation transforms: LBRLOG/LCRLOG hook
 * placement, the Figure 8 success-site rules (including hoisting onto
 * the guarding branch), CBI instrumentation, and clearing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "program/builder.hh"
#include "program/cfg.hh"
#include "program/fingerprint.hh"
#include "program/transform.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

struct GuardedProgram
{
    ProgramPtr prog;
    LogSiteId site = 0;
    std::uint32_t guardBr = 0; //!< index of the guarding Br
};

/** if (x == 1) { error(); }  — the Figure 8 shape. */
GuardedProgram
guardedErrorProgram()
{
    GuardedProgram out;
    ProgramBuilder b("guarded");
    b.global("x", 1, {0});
    b.func("main");
    b.loadg(r1, "x");
    b.movi(r2, 1);
    SourceBranchId id = b.beginIf(Cond::Eq, r1, r2, "x == 1");
    out.site = b.logError("guarded failure");
    b.endIf();
    b.halt();
    out.prog = b.build();
    out.guardBr = out.prog->branch(id).brIndex;
    return out;
}

TEST(Transform, LbrLogAttachesProfileAtFailureSites)
{
    GuardedProgram gp = guardedErrorProgram();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*gp.prog, plan);

    const Instrumentation &instr = gp.prog->instrumentation;
    EXPECT_TRUE(instr.enableLbrAtMain);
    EXPECT_TRUE(instr.segfaultProfilesLbr);
    EXPECT_TRUE(instr.toggleLbrAroundLibraries);
    std::uint32_t siteIdx = gp.prog->logSite(gp.site).instrIndex;
    ASSERT_TRUE(instr.before.count(siteIdx));
    EXPECT_EQ(instr.before.at(siteIdx)[0].action,
              HookAction::ProfileLbr);
    EXPECT_FALSE(instr.before.at(siteIdx)[0].successSite);
}

TEST(Transform, SuccessSiteHoistsOntoTheGuardingBranch)
{
    // Figure 8: the success-site profile must execute on every
    // evaluation of the condition, i.e. on the Br itself, not on the
    // conditional normalization jump into the failure block.
    GuardedProgram gp = guardedErrorProgram();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*gp.prog, plan);
    Cfg cfg(*gp.prog);
    transform::applySuccessSites(
        *gp.prog, cfg, true, transform::SuccessSiteScheme::Reactive,
        gp.site);

    const Instrumentation &instr = gp.prog->instrumentation;
    ASSERT_TRUE(instr.before.count(gp.guardBr));
    bool successHook = false;
    for (const auto &hook : instr.before.at(gp.guardBr)) {
        successHook = successHook ||
                      (hook.action == HookAction::ProfileLbr &&
                       hook.successSite);
    }
    EXPECT_TRUE(successHook);
}

TEST(Transform, SuccessSiteProfilesInSuccessfulRuns)
{
    GuardedProgram gp = guardedErrorProgram();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*gp.prog, plan);
    Cfg cfg(*gp.prog);
    transform::applySuccessSites(
        *gp.prog, cfg, true, transform::SuccessSiteScheme::Reactive,
        gp.site);

    // x == 0: the branch is evaluated (false), the run succeeds, and
    // a success-site profile exists.
    RunResult ok = Machine(gp.prog).run();
    EXPECT_EQ(ok.outcome, RunOutcome::Completed);
    bool successProfile = false;
    for (const auto &p : ok.profiles)
        successProfile = successProfile || p.successSite;
    EXPECT_TRUE(successProfile);

    // x == 1: both the success-site and the failure-site profiles.
    MachineOptions failOpts;
    failOpts.globalOverrides = {{"x", {1}}};
    RunResult bad = Machine(gp.prog, failOpts).run();
    EXPECT_EQ(bad.outcome, RunOutcome::ErrorLogged);
    bool failureProfile = false;
    for (const auto &p : bad.profiles)
        failureProfile = failureProfile || !p.successSite;
    EXPECT_TRUE(failureProfile);
}

TEST(Transform, ReactiveSegfaultSiteIsAfterTheFaultingInstr)
{
    ProgramBuilder b("segv");
    b.global("p", 1, {0});
    b.func("main");
    b.loadg(r1, "p");
    std::uint32_t faulting = b.load(r2, r1, 0); // NULL deref when p=0
    b.out(r2);
    b.halt();
    ProgramPtr prog = b.build();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*prog, plan);
    Cfg cfg(*prog);
    transform::applySuccessSites(
        *prog, cfg, true, transform::SuccessSiteScheme::Reactive,
        kSegfaultSite, faulting);

    ASSERT_TRUE(prog->instrumentation.after.count(faulting));

    // Healthy pointer: the after-hook yields a success profile.
    MachineOptions opts;
    opts.globalOverrides = {{"p", {static_cast<Word>(
                                     layout::kGlobalBase)}}};
    RunResult ok = Machine(prog, opts).run();
    EXPECT_EQ(ok.outcome, RunOutcome::Completed);
    bool successProfile = false;
    for (const auto &p : ok.profiles) {
        successProfile =
            successProfile || (p.successSite &&
                               p.site == kSegfaultSite);
    }
    EXPECT_TRUE(successProfile);

    // NULL pointer: the segfault handler profiles at the crash.
    RunResult bad = Machine(prog).run();
    EXPECT_EQ(bad.outcome, RunOutcome::SegFault);
    bool faultProfile = false;
    for (const auto &p : bad.profiles) {
        faultProfile = faultProfile ||
                       (!p.successSite && p.site == kSegfaultSite);
    }
    EXPECT_TRUE(faultProfile);
}

TEST(Transform, ProactiveCoversAllFailureSites)
{
    ProgramBuilder b("multi");
    b.global("x", 1, {0});
    b.func("main");
    b.loadg(r1, "x");
    b.movi(r2, 1);
    b.beginIf(Cond::Eq, r1, r2);
    b.logError("site 0");
    b.endIf();
    b.movi(r2, 2);
    b.beginIf(Cond::Eq, r1, r2);
    b.logError("site 1");
    b.endIf();
    b.logInfo("not a failure site");
    b.halt();
    ProgramPtr prog = b.build();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*prog, plan);
    Cfg cfg(*prog);
    transform::applySuccessSites(
        *prog, cfg, true, transform::SuccessSiteScheme::Proactive);

    int successHooks = 0;
    for (const auto &[idx, hooks] : prog->instrumentation.before) {
        for (const auto &hook : hooks)
            successHooks += hook.successSite ? 1 : 0;
    }
    EXPECT_EQ(successHooks, 2); // one per failure site, none for info
}

TEST(Transform, CbiInstrumentsEverySourceConditional)
{
    GuardedProgram gp = guardedErrorProgram();
    transform::applyCbi(*gp.prog, 100.0);
    const Instrumentation &instr = gp.prog->instrumentation;
    EXPECT_TRUE(instr.cbiEnabled);
    int cbiHooks = 0;
    for (const auto &[idx, hooks] : instr.before) {
        for (const auto &hook : hooks) {
            if (hook.action == HookAction::CbiSample) {
                ++cbiHooks;
                EXPECT_EQ(gp.prog->code[idx].op, Opcode::Br);
            }
        }
    }
    EXPECT_EQ(cbiHooks,
              static_cast<int>(gp.prog->branches.size()));
}

TEST(Transform, ClearRemovesEverything)
{
    GuardedProgram gp = guardedErrorProgram();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*gp.prog, plan);
    transform::applyCbi(*gp.prog);
    transform::clear(*gp.prog);
    EXPECT_TRUE(gp.prog->instrumentation.empty());
    EXPECT_FALSE(gp.prog->instrumentation.cbiEnabled);
}

TEST(Transform, HooksAreIdempotent)
{
    GuardedProgram gp = guardedErrorProgram();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*gp.prog, plan);
    transform::applyLbrLog(*gp.prog, plan); // re-apply
    std::uint32_t siteIdx = gp.prog->logSite(gp.site).instrIndex;
    EXPECT_EQ(gp.prog->instrumentation.before.at(siteIdx).size(),
              1u);
}

// ---- copy-on-write overlay forms ------------------------------------------

TEST(TransformOverlay, OverlayLeavesTheBaseProgramUntouched)
{
    GuardedProgram gp = guardedErrorProgram();
    const std::uint64_t baseFp = fingerprintProgramBase(*gp.prog);
    const std::uint64_t fullFp = fingerprintProgram(*gp.prog);

    Instrumentation plan;
    transform::LbrLogPlan lbr;
    lbr.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*gp.prog, plan, lbr);
    transform::applyCbi(*gp.prog, plan);

    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(gp.prog->instrumentation.empty());
    EXPECT_EQ(fingerprintProgramBase(*gp.prog), baseFp);
    EXPECT_EQ(fingerprintProgram(*gp.prog), fullFp);
    EXPECT_NE(fingerprintProgram(*gp.prog, plan), fullFp);
}

TEST(TransformOverlay, ClearRestoresTheBaseFingerprint)
{
    GuardedProgram gp = guardedErrorProgram();
    const std::uint64_t emptyFp =
        fingerprintProgram(*gp.prog, gp.prog->instrumentation);

    Instrumentation plan;
    transform::LbrLogPlan lbr;
    lbr.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*gp.prog, plan, lbr);
    Cfg cfg(*gp.prog);
    transform::applySuccessSites(
        *gp.prog, plan, cfg, true,
        transform::SuccessSiteScheme::Reactive, gp.site);
    EXPECT_NE(fingerprintProgram(*gp.prog, plan), emptyFp);

    transform::clear(plan);
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(fingerprintProgram(*gp.prog, plan), emptyFp);
}

TEST(TransformOverlay, TwoOverlaysOnOneBaseAreIndependent)
{
    GuardedProgram gp = guardedErrorProgram();
    auto lbrPlan = std::make_shared<Instrumentation>();
    transform::LbrLogPlan lbr;
    lbr.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*gp.prog, *lbrPlan, lbr);

    auto cbiPlan = std::make_shared<Instrumentation>();
    transform::applyCbi(*gp.prog, *cbiPlan, 1.0);

    EXPECT_NE(fingerprintInstrumentation(*lbrPlan),
              fingerprintInstrumentation(*cbiPlan));

    // Each overlay drives a Machine on the same untouched base, and
    // each sees only its own hooks.
    MachineOptions failOpts;
    failOpts.globalOverrides = {{"x", {1}}};
    RunResult lbrRun = Machine(gp.prog, failOpts, lbrPlan).run();
    RunResult cbiRun = Machine(gp.prog, failOpts, cbiPlan).run();
    EXPECT_FALSE(lbrRun.profiles.empty());
    EXPECT_TRUE(lbrRun.cbiSiteSamples.empty());
    EXPECT_FALSE(cbiRun.cbiSiteSamples.empty());
    EXPECT_TRUE(cbiRun.profiles.empty());
    EXPECT_TRUE(gp.prog->instrumentation.empty());
}

TEST(TransformOverlay, OverlayRunMatchesInPlaceInstrumentation)
{
    transform::LbrLogPlan lbr;
    lbr.lbrSelectMask = msr::kPaperLbrSelect;
    MachineOptions failOpts;
    failOpts.globalOverrides = {{"x", {1}}};

    // Legacy form: mutate the program's own instrumentation.
    GuardedProgram inPlace = guardedErrorProgram();
    transform::applyLbrLog(*inPlace.prog, lbr);
    Cfg cfg1(*inPlace.prog);
    transform::applySuccessSites(
        *inPlace.prog, cfg1, true,
        transform::SuccessSiteScheme::Reactive, inPlace.site);
    RunResult a = Machine(inPlace.prog, failOpts).run();

    // Overlay form: identical plan against an untouched base.
    GuardedProgram base = guardedErrorProgram();
    auto plan = std::make_shared<Instrumentation>();
    transform::applyLbrLog(*base.prog, *plan, lbr);
    Cfg cfg2(*base.prog);
    transform::applySuccessSites(
        *base.prog, *plan, cfg2, true,
        transform::SuccessSiteScheme::Reactive, base.site);
    RunResult b = Machine(base.prog, failOpts, plan).run();

    EXPECT_TRUE(a == b); // bit-exact RunResult equality
    EXPECT_EQ(fingerprintProgram(*inPlace.prog),
              fingerprintProgram(*base.prog, *plan));
}

TEST(Transform, CbiSamplingObservesPredicates)
{
    // With a mean period of 1 every branch execution is sampled.
    GuardedProgram gp = guardedErrorProgram();
    transform::applyCbi(*gp.prog, 1.0);
    RunResult result = Machine(gp.prog).run();
    EXPECT_FALSE(result.cbiSiteSamples.empty());
    // x == 0: the guard evaluated false.
    bool sawFalse = false;
    for (const auto &[pred, count] : result.cbiCounts) {
        if (!pred.second && count > 0)
            sawFalse = true;
    }
    EXPECT_TRUE(sawFalse);
}

} // namespace
} // namespace stm
