/**
 * @file
 * Shared helpers for randomized tests.
 *
 * Every property-style test seeds its PRNG from testSeed(): a fixed
 * default for reproducible CI, overridable with STM_TEST_SEED to
 * replay a failure or to widen the explored space. The seed is logged
 * so a red run's output always contains what is needed to reproduce
 * it exactly.
 */

#ifndef STM_TESTS_TEST_UTIL_HH
#define STM_TESTS_TEST_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <iostream>

namespace stm::test
{

/** The randomized-test seed: STM_TEST_SEED env, else @p fallback. */
inline std::uint64_t
testSeed(std::uint64_t fallback = 0x5eed5eedULL)
{
    std::uint64_t seed = fallback;
    if (const char *env = std::getenv("STM_TEST_SEED")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 0);
        if (end && *end == '\0')
            seed = v;
    }
    std::cout << "[ STM_TEST_SEED=" << seed << " ]\n";
    return seed;
}

} // namespace stm::test

#endif // STM_TESTS_TEST_UTIL_HH
