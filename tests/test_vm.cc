/**
 * @file
 * Unit tests for the MiniVM machine: instruction semantics, memory
 * protection, threads and synchronization, scheduling determinism,
 * failure detection, and library-call semantics.
 */

#include <gtest/gtest.h>

#include "program/builder.hh"
#include "program/transform.hh"
#include "vm/machine.hh"

namespace stm
{
namespace
{

using namespace regs;

/** Build, run, return the result. */
RunResult
runProgram(ProgramPtr prog, MachineOptions opts = {})
{
    Machine machine(std::move(prog), std::move(opts));
    return machine.run();
}

// ---- arithmetic and data flow --------------------------------------------

TEST(Vm, ArithmeticPipeline)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 10);
    b.movi(r2, 3);
    b.add(r3, r1, r2);  // 13
    b.sub(r4, r1, r2);  // 7
    b.mul(r5, r1, r2);  // 30
    b.div(r6, r1, r2);  // 3
    b.mod(r7, r1, r2);  // 1
    b.andr(r8, r1, r2); // 2
    b.orr(r9, r1, r2);  // 11
    b.xorr(r10, r1, r2); // 9
    b.addi(r11, r1, -4); // 6
    for (RegId r : {r3, r4, r5, r6, r7, r8, r9, r10, r11})
        b.out(r);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output,
              (std::vector<Word>{13, 7, 30, 3, 1, 2, 11, 9, 6}));
}

TEST(Vm, ShiftsAndUnary)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 5);
    b.movi(r2, 2);
    b.shl(r3, r1, r2); // 20
    b.shr(r4, r3, r2); // 5
    b.notr(r5, r1);    // ~5
    b.neg(r6, r1);     // -5
    b.out(r3);
    b.out(r4);
    b.out(r5);
    b.out(r6);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.output, (std::vector<Word>{20, 5, ~5, -5}));
}

TEST(Vm, DivisionByZeroIsArithmeticFault)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 1);
    b.movi(r2, 0);
    b.div(r3, r1, r2);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::ArithmeticFault);
    ASSERT_TRUE(result.failure.has_value());
}

// ---- memory -----------------------------------------------------------------

TEST(Vm, GlobalsInitializedAndAddressable)
{
    ProgramBuilder b("t");
    b.global("g", 3, {7, 8, 9});
    b.func("main");
    b.loadg(r1, "g", 0);
    b.loadg(r2, "g", 8);
    b.loadg(r3, "g", 16);
    b.out(r1);
    b.out(r2);
    b.out(r3);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.output, (std::vector<Word>{7, 8, 9}));
}

TEST(Vm, GlobalOverridesAreWorkloadInputs)
{
    ProgramBuilder b("t");
    b.global("g", 2, {1, 2});
    b.func("main");
    b.loadg(r1, "g", 8);
    b.out(r1);
    b.halt();
    MachineOptions opts;
    opts.globalOverrides = {{"g", {10, 20}}};
    RunResult result = runProgram(b.build(), opts);
    EXPECT_EQ(result.output, (std::vector<Word>{20}));
}

TEST(Vm, StoreThenLoadRoundTrips)
{
    ProgramBuilder b("t");
    b.global("g", 1);
    b.func("main");
    b.movi(r2, 77);
    b.storeg("g", 0, r2, r3);
    b.loadg(r4, "g");
    b.out(r4);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.output, (std::vector<Word>{77}));
}

TEST(Vm, NullDereferenceSegfaults)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 0);
    b.load(r2, r1, 0);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::SegFault);
    EXPECT_EQ(result.failure->instrIndex, 1u);
}

TEST(Vm, OutOfSegmentAccessSegfaults)
{
    ProgramBuilder b("t");
    b.global("g", 1);
    b.func("main");
    b.lea(r1, "g", 8 * 100);
    b.load(r2, r1, 0);
    b.halt();
    EXPECT_EQ(runProgram(b.build()).outcome, RunOutcome::SegFault);
}

TEST(Vm, OverflowWithinSegmentCorruptsSilently)
{
    // Adjacent globals are contiguous: writing past the end of one
    // corrupts the next (the sort bug's mechanism), not a fault.
    ProgramBuilder b("t");
    b.global("a", 1, {1});
    b.global("bsym", 1, {2});
    b.func("main");
    b.movi(r2, 99);
    b.lea(r1, "a", 8); // one past 'a' == 'bsym'
    b.store(r1, 0, r2);
    b.loadg(r3, "bsym");
    b.out(r3);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{99}));
}

TEST(Vm, StackAccessViaStackPointer)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 5);
    b.localStore(-8, r1);
    b.localLoad(r2, -8);
    b.out(r2);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.output, (std::vector<Word>{5}));
}

TEST(Vm, HeapAllocationViaSyscall)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 64);
    b.syscall(SyscallNo::Alloc, r1, r2); // r2 = ptr
    b.movi(r3, 11);
    b.store(r2, 0, r3);
    b.load(r4, r2, 0);
    b.out(r4);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{11}));
}

// ---- control flow --------------------------------------------------------

TEST(Vm, IfElseTakesTheRightArm)
{
    for (Word x : {1, 5}) {
        ProgramBuilder b("t");
        b.global("x", 1);
        b.func("main");
        b.loadg(r1, "x");
        b.movi(r2, 3);
        b.beginIf(Cond::Lt, r1, r2);
        b.movi(r3, 100);
        b.beginElse();
        b.movi(r3, 200);
        b.endIf();
        b.out(r3);
        b.halt();
        MachineOptions opts;
        opts.globalOverrides = {{"x", {x}}};
        RunResult result = runProgram(b.build(), opts);
        EXPECT_EQ(result.output[0], x < 3 ? 100 : 200);
    }
}

TEST(Vm, WhileLoopIterates)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 0);
    b.movi(r2, 5);
    b.movi(r3, 0);
    b.beginWhile(Cond::Lt, r1, r2);
    b.add(r3, r3, r1);
    b.addi(r1, r1, 1);
    b.endWhile();
    b.out(r3); // 0+1+2+3+4
    b.halt();
    EXPECT_EQ(runProgram(b.build()).output,
              (std::vector<Word>{10}));
}

TEST(Vm, CallAndReturnPreserveFlow)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 1);
    b.call("inc");
    b.call("inc");
    b.out(r1);
    b.halt();
    b.func("inc");
    b.addi(r1, r1, 1);
    b.ret();
    EXPECT_EQ(runProgram(b.build()).output,
              (std::vector<Word>{3}));
}

TEST(Vm, ReturnFromMainCompletesRun)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 1);
    b.ret();
    EXPECT_EQ(runProgram(b.build()).outcome,
              RunOutcome::Completed);
}

TEST(Vm, StepLimitDetectsHangs)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 0);
    b.movi(r2, 1);
    b.beginWhile(Cond::Ne, r1, r2, "forever");
    b.nop();
    b.endWhile();
    b.halt();
    MachineOptions opts;
    opts.maxSteps = 5000;
    RunResult result = runProgram(b.build(), opts);
    EXPECT_EQ(result.outcome, RunOutcome::StepLimit);
}

TEST(Vm, AssertEqFailureIsFailStop)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 1);
    b.movi(r2, 2);
    b.assertEq(r1, r2);
    b.halt();
    EXPECT_EQ(runProgram(b.build()).outcome,
              RunOutcome::AssertFailed);
}

TEST(Vm, LogErrorEndsTheRunWithItsSite)
{
    ProgramBuilder b("t");
    b.func("main");
    LogSiteId site = b.logError("boom");
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::ErrorLogged);
    EXPECT_EQ(result.failure->site, site);
    EXPECT_EQ(result.failure->message, "boom");
}

TEST(Vm, LogInfoAndCheckpointDoNotStopTheRun)
{
    ProgramBuilder b("t");
    b.func("main");
    b.logInfo("fyi");
    b.logCheckpoint("checkpoint");
    b.movi(r1, 1);
    b.out(r1);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{1}));
}

// ---- threads and synchronization -------------------------------------------

TEST(Vm, SpawnRunsChildAndJoinWaits)
{
    ProgramBuilder b("t");
    b.global("flag", 1, {0}, true);
    b.func("main");
    b.movi(r1, 7);
    b.spawn(r9, "child", r1);
    b.join(r9);
    b.loadg(r2, "flag");
    b.out(r2);
    b.halt();
    b.func("child");
    // The spawn argument arrives in r1.
    b.storeg("flag", 0, r1, r3);
    b.ret();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{7}));
}

TEST(Vm, MutexProvidesMutualExclusion)
{
    // Two threads each do read-modify-write 20 times under a lock;
    // no update may be lost despite aggressive preemption.
    ProgramBuilder b("t");
    b.global("mutex", 1, {0}, true);
    b.global("counter", 1, {0}, true);
    b.func("main");
    b.movi(r1, 0);
    b.spawn(r9, "worker", r1);
    b.call("worker_body");
    b.join(r9);
    b.loadg(r2, "counter");
    b.out(r2);
    b.halt();

    b.func("worker");
    b.call("worker_body");
    b.ret();

    b.func("worker_body");
    b.movi(r10, 0);
    b.movi(r11, 20);
    b.beginWhile(Cond::Lt, r10, r11);
    {
        b.lea(r12, "mutex");
        b.lockAddr(r12);
        b.loadg(r13, "counter");
        b.addi(r13, r13, 1);
        b.storeg("counter", 0, r13, r14);
        b.unlockAddr(r12);
        b.addi(r10, r10, 1);
    }
    b.endWhile();
    b.ret();

    MachineOptions opts;
    opts.sched.preemptSharedProb = 0.5;
    opts.sched.quantum = 7;
    opts.sched.seed = 99;
    RunResult result = runProgram(b.build(), opts);
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{40}));
}

TEST(Vm, UnprotectedCounterLosesUpdates)
{
    // The same workload without the lock drops increments under
    // preemption: the machine really interleaves.
    ProgramBuilder b("t");
    b.global("counter", 1, {0}, true);
    b.func("main");
    b.movi(r1, 0);
    b.spawn(r9, "worker", r1);
    b.call("body");
    b.join(r9);
    b.loadg(r2, "counter");
    b.out(r2);
    b.halt();
    b.func("worker");
    b.call("body");
    b.ret();
    b.func("body");
    b.movi(r10, 0);
    b.movi(r11, 30);
    b.beginWhile(Cond::Lt, r10, r11);
    {
        b.loadg(r13, "counter");
        b.addi(r13, r13, 1);
        b.storeg("counter", 0, r13, r14);
        b.addi(r10, r10, 1);
    }
    b.endWhile();
    b.ret();

    bool lost = false;
    for (std::uint64_t seed = 1; seed <= 20 && !lost; ++seed) {
        MachineOptions opts;
        opts.sched.preemptSharedProb = 0.5;
        opts.sched.quantum = 5;
        opts.sched.seed = seed;
        RunResult result = runProgram(b.build(), opts);
        lost = result.output[0] < 60;
    }
    EXPECT_TRUE(lost);
}

TEST(Vm, LockOnNullIsSegfault)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 0);
    b.lockAddr(r1);
    b.halt();
    EXPECT_EQ(runProgram(b.build()).outcome, RunOutcome::SegFault);
}

TEST(Vm, DeadlockDetected)
{
    // Two threads acquire two locks in opposite order with forced
    // alternation.
    ProgramBuilder b("t");
    b.global("m1", 1, {0}, true);
    b.global("m2", 1, {0}, true);
    b.func("main");
    b.movi(r1, 0);
    b.spawn(r9, "other", r1);
    b.lea(r2, "m1");
    b.lockAddr(r2);
    b.yield(); // let the other thread take m2
    b.lea(r3, "m2");
    b.lockAddr(r3);
    b.join(r9);
    b.halt();
    b.func("other");
    b.lea(r2, "m2");
    b.lockAddr(r2);
    b.yield();
    b.lea(r3, "m1");
    b.lockAddr(r3);
    b.ret();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Deadlock);
}

TEST(Vm, DeterministicGivenSeed)
{
    ProgramBuilder b("t");
    b.global("x", 1, {0}, true);
    b.func("main");
    b.movi(r1, 0);
    b.spawn(r9, "w", r1);
    b.loadg(r2, "x");
    b.out(r2);
    b.join(r9);
    b.halt();
    b.func("w");
    b.movi(r3, 9);
    b.storeg("x", 0, r3, r4);
    b.ret();
    ProgramPtr prog = b.build();

    MachineOptions opts;
    opts.sched.preemptSharedProb = 0.5;
    opts.sched.seed = 4242;
    RunResult first = runProgram(prog, opts);
    for (int i = 0; i < 5; ++i) {
        RunResult again = runProgram(prog, opts);
        EXPECT_EQ(again.output, first.output);
        EXPECT_EQ(again.stats.userInstructions,
                  first.stats.userInstructions);
        EXPECT_EQ(again.stats.contextSwitches,
                  first.stats.contextSwitches);
    }
}

// ---- library calls ------------------------------------------------------------

TEST(Vm, MemmoveCopiesForward)
{
    ProgramBuilder b("t");
    b.global("src", 4, {1, 2, 3, 4});
    b.global("dst", 4, {});
    b.func("main");
    b.lea(r1, "dst");
    b.lea(r2, "src");
    b.movi(r3, 4);
    b.libcall(LibFn::Memmove);
    b.loadg(r4, "dst", 0);
    b.loadg(r5, "dst", 24);
    b.out(r4);
    b.out(r5);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.output, (std::vector<Word>{1, 4}));
}

TEST(Vm, MemmoveHandlesOverlapBackward)
{
    // memmove(&a[1], &a[0], 3): overlapping, must copy backward.
    ProgramBuilder b("t");
    b.global("a", 4, {1, 2, 3, 0});
    b.func("main");
    b.lea(r1, "a", 8);
    b.lea(r2, "a", 0);
    b.movi(r3, 3);
    b.libcall(LibFn::Memmove);
    for (int i = 0; i < 4; ++i) {
        b.loadg(r4, "a", 8 * i);
        b.out(r4);
    }
    b.halt();
    EXPECT_EQ(runProgram(b.build()).output,
              (std::vector<Word>{1, 1, 2, 3}));
}

TEST(Vm, MemsetFills)
{
    ProgramBuilder b("t");
    b.global("a", 3, {9, 9, 9});
    b.func("main");
    b.lea(r1, "a");
    b.movi(r2, 5);
    b.movi(r3, 3);
    b.libcall(LibFn::Memset);
    b.loadg(r4, "a", 16);
    b.out(r4);
    b.halt();
    EXPECT_EQ(runProgram(b.build()).output,
              (std::vector<Word>{5}));
}

TEST(Vm, StrCmpComparesWordStrings)
{
    ProgramBuilder b("t");
    b.global("s1", 4, {104, 105, 0, 0});
    b.global("s2", 4, {104, 106, 0, 0});
    b.func("main");
    b.lea(r1, "s1");
    b.lea(r2, "s2");
    b.libcall(LibFn::StrCmp);
    b.out(r0);
    b.lea(r1, "s1");
    b.lea(r2, "s1");
    b.libcall(LibFn::StrCmp);
    b.out(r0);
    b.halt();
    EXPECT_EQ(runProgram(b.build()).output,
              (std::vector<Word>{-1, 0}));
}

TEST(Vm, TimeIsDeterministicPerSchedule)
{
    ProgramBuilder b("t");
    b.func("main");
    b.libcall(LibFn::Time);
    b.out(r0);
    b.halt();
    ProgramPtr prog = b.build();
    RunResult a = runProgram(prog);
    RunResult c = runProgram(prog);
    EXPECT_EQ(a.output, c.output);
    EXPECT_GT(a.output[0], 0);
}

TEST(Vm, MemmoveOutOfBoundsSegfaultsInsideLibrary)
{
    ProgramBuilder b("t");
    b.global("only", 2, {1, 2});
    b.func("main");
    b.lea(r1, "only");
    b.lea(r2, "only");
    b.movi(r3, 1000); // way past the segment
    b.libcall(LibFn::Memmove);
    b.halt();
    EXPECT_EQ(runProgram(b.build()).outcome, RunOutcome::SegFault);
}

TEST(Vm, IndirectCallThroughFunctionPointer)
{
    // A dispatch table: handler = handlers[kind]; handler().
    ProgramBuilder b("t");
    b.global("kind", 1, {1});
    b.global("handlers", 2, {});
    b.func("main");
    b.leaFunction(r4, "handler_a");
    b.storeg("handlers", 0, r4, r5);
    b.leaFunction(r4, "handler_b");
    b.storeg("handlers", 8, r4, r5);
    b.loadg(r6, "kind");
    b.movi(r7, 8);
    b.mul(r8, r6, r7);
    b.lea(r9, "handlers");
    b.add(r9, r9, r8);
    b.load(r10, r9, 0);
    b.icall(r10);
    b.out(r0);
    b.halt();
    b.func("handler_a");
    b.movi(r0, 100);
    b.ret();
    b.func("handler_b");
    b.movi(r0, 200);
    b.ret();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.output, (std::vector<Word>{200}));
}

TEST(Vm, IndirectJumpToComputedTarget)
{
    ProgramBuilder b("t");
    b.func("main");
    b.leaFunction(r4, "tail");
    b.ijmp(r4);
    b.movi(r0, 1); // skipped
    b.halt();
    b.func("tail");
    b.movi(r0, 7);
    b.out(r0);
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_EQ(result.output, (std::vector<Word>{7}));
}

TEST(Vm, IndirectCallToGarbageSegfaults)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r4, 12345); // not a code address
    b.icall(r4);
    b.halt();
    EXPECT_EQ(runProgram(b.build()).outcome, RunOutcome::SegFault);
}

TEST(Vm, IndirectBranchesAreFilterableLbrClasses)
{
    // Near indirect calls/jumps are suppressed by the paper's mask
    // but recorded without it.
    ProgramBuilder b("t");
    b.func("main");
    b.leaFunction(r4, "callee");
    b.icall(r4);
    b.logError("stop here");
    b.halt();
    b.func("callee");
    b.ret();
    ProgramPtr prog = b.build();
    transform::LbrLogPlan plan;
    plan.lbrSelectMask = 0; // record everything
    plan.toggling = false;
    transform::applyLbrLog(*prog, plan);
    RunResult all = Machine(prog).run();
    bool sawIndirect = false;
    for (const auto &rec : all.profiles.back().lbr) {
        sawIndirect = sawIndirect ||
                      rec.kind == BranchKind::NearIndirectCall;
    }
    EXPECT_TRUE(sawIndirect);

    transform::clear(*prog);
    plan.lbrSelectMask = msr::kPaperLbrSelect;
    transform::applyLbrLog(*prog, plan);
    RunResult filtered = Machine(prog).run();
    for (const auto &rec : filtered.profiles.back().lbr) {
        EXPECT_NE(rec.kind, BranchKind::NearIndirectCall);
    }
}

// ---- accounting -----------------------------------------------------------

TEST(Vm, InstructionAccountingMonotonic)
{
    ProgramBuilder b("t");
    b.func("main");
    b.movi(r1, 0);
    b.movi(r2, 100);
    b.beginWhile(Cond::Lt, r1, r2);
    b.addi(r1, r1, 1);
    b.endWhile();
    b.halt();
    RunResult result = runProgram(b.build());
    EXPECT_GT(result.stats.userInstructions, 200u);
    EXPECT_GT(result.stats.branchesRetired, 100u);
    EXPECT_EQ(result.stats.instrumentationInstructions, 0u);
    EXPECT_DOUBLE_EQ(result.stats.overhead(), 0.0);
}

} // namespace
} // namespace stm
