/**
 * @file
 * stm_collector — the fleet collection service front end.
 *
 *   stm_collector <bug-id> [options]
 *   stm_collector --merge DIR [--ranking-out FILE]
 *
 * Emulates a fleet of N machines running the monitored program,
 * shipping wire-format LBR/LCR reports through the sharded collector,
 * and ranking failure predictors incrementally as reports arrive
 * (Section 5.2's deployment story, Figure 8). Prints the diagnosis,
 * the transport accounting, and — with --stats-json — the collector's
 * per-shard and aggregate metrics as JSON.
 *
 * With --durable DIR the transport runs through the epoched durable
 * collector: accepted frames spill to a write-ahead log, the epoch
 * rolls every --epoch-every accepted reports (compacting the state
 * into a mergeable on-disk RankerSnapshot), and a restarted process
 * recovers the directory state before ingesting — re-running the
 * same command after a crash (--crash-after simulates one) converges
 * to the identical ranking. --partition i/N makes this process
 * handle only machines with id ≡ i (mod N), so N collector processes
 * sharding one fleet each snapshot their slice; the --merge
 * coordinator folds every snapshot in the directory into one ranking
 * that is bit-identical to a single-collector run over the union.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <unistd.h>

#include "corpus/registry.hh"
#include "fleet/durable/campaign.hh"
#include "fleet/durable/durable_collector.hh"
#include "fleet/fleet_sim.hh"
#include "support/logging.hh"
#include "trace_cli.hh"

using namespace stm;

namespace
{

struct CliOptions
{
    std::string bugId;
    std::uint64_t machines = 16;
    unsigned shards = 4;
    std::uint32_t profiles = 10;
    std::size_t entries = 16;
    bool conf1 = false;
    bool drop = false;
    std::size_t capacity = 4096;
    std::size_t arenaMb = 1;
    std::uint32_t duplicateEvery = 3;
    std::uint32_t corruptEvery = 5;
    std::size_t top = 5;
    unsigned jobs = 0;
    std::string statsJsonPath;
    std::string tracePath;

    /** Durable / multi-collector mode. */
    std::string durableDir;
    std::uint64_t collectorId = 1;
    std::uint64_t epochEvery = 0; //!< 0 = one epoch for the whole run
    std::uint64_t partIndex = 0;
    std::uint64_t partCount = 1;
    std::uint64_t crashAfter = 0; //!< _exit after N accepts (0 = off)
    std::string mergeDir;
    std::string rankingOutPath;
};

void
usage()
{
    std::cout
        << "usage: stm_collector <bug-id> [options]\n"
        << "       stm_collector --merge DIR [--ranking-out FILE]\n\n"
        << "options:\n"
        << "  --machines N      simulated fleet size (default 16)\n"
        << "  --shards N        collector ingest shards (default 4)\n"
        << "  --profiles N      failure/success reports to aggregate "
           "(default 10)\n"
        << "  --entries N       LBR/LCR record depth (default 16)\n"
        << "  --conf1           space-saving LCR configuration\n"
        << "  --ring-slots N    per-shard submission-ring slots, "
           "rounded\n"
           "                    up to a power of two (default 4096)\n"
        << "  --capacity N      alias for --ring-slots (legacy name)\n"
        << "  --arena-mb N      per-producer frame arena size in MiB "
           "(default 1)\n"
        << "  --drop            shed load when a shard is full "
           "(default: block)\n"
        << "  --dup-every N     retransmit every N-th frame "
           "(default 3, 0 = off)\n"
        << "  --corrupt-every N corrupt every N-th frame "
           "(default 5, 0 = off)\n"
        << "  --top N           predictors to print (default 5)\n"
        << "  --jobs N          worker threads (default: STM_JOBS "
           "env, else hardware concurrency)\n"
        << "  --stats-json FILE dump collector metrics as JSON\n"
        << "  --trace FILE      record trace events for the run and\n"
           "                    dump them to FILE (.json = Chrome\n"
           "                    trace_event, else binary STMT)\n\n"
        << "durable mode:\n"
        << "  --durable DIR     epoched collector: WAL spill + "
           "snapshot\n"
           "                    compaction in DIR (recovers on "
           "restart)\n"
        << "  --id N            this collector's id, >= 1 "
           "(default 1)\n"
        << "  --epoch-every N   roll the epoch every N accepted "
           "reports\n"
           "                    (default: once, at the end)\n"
        << "  --partition I/N   handle only machines with id mod N "
           "== I\n"
        << "  --crash-after N   simulate a crash (_exit) after N "
           "accepts\n"
        << "  --merge DIR       coordinator: merge every snapshot in "
           "DIR\n"
        << "  --ranking-out F   write the deterministic ranking to "
           "F\n";
}

bool
parse(int argc, char **argv, CliOptions *out)
try {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        auto numeric = [&](auto *slot) {
            const char *v = next();
            if (!v)
                return false;
            *slot = static_cast<
                std::remove_pointer_t<decltype(slot)>>(
                std::stoull(v));
            return true;
        };
        if (arg == "--machines") {
            if (!numeric(&out->machines))
                return false;
        } else if (arg == "--shards") {
            if (!numeric(&out->shards))
                return false;
        } else if (arg == "--profiles") {
            if (!numeric(&out->profiles))
                return false;
        } else if (arg == "--entries") {
            if (!numeric(&out->entries))
                return false;
        } else if (arg == "--conf1") {
            out->conf1 = true;
        } else if (arg == "--capacity" || arg == "--ring-slots") {
            if (!numeric(&out->capacity))
                return false;
        } else if (arg == "--arena-mb") {
            if (!numeric(&out->arenaMb))
                return false;
        } else if (arg == "--drop") {
            out->drop = true;
        } else if (arg == "--dup-every") {
            if (!numeric(&out->duplicateEvery))
                return false;
        } else if (arg == "--corrupt-every") {
            if (!numeric(&out->corruptEvery))
                return false;
        } else if (arg == "--top") {
            if (!numeric(&out->top))
                return false;
        } else if (arg == "--jobs") {
            if (!numeric(&out->jobs))
                return false;
        } else if (arg == "--stats-json") {
            const char *v = next();
            if (!v)
                return false;
            out->statsJsonPath = v;
        } else if (arg == "--trace") {
            const char *v = next();
            if (!v)
                return false;
            out->tracePath = v;
        } else if (arg == "--durable") {
            const char *v = next();
            if (!v)
                return false;
            out->durableDir = v;
        } else if (arg == "--id") {
            if (!numeric(&out->collectorId))
                return false;
        } else if (arg == "--epoch-every") {
            if (!numeric(&out->epochEvery))
                return false;
        } else if (arg == "--crash-after") {
            if (!numeric(&out->crashAfter))
                return false;
        } else if (arg == "--partition") {
            const char *v = next();
            if (!v)
                return false;
            const char *slash = std::strchr(v, '/');
            if (!slash)
                return false;
            out->partIndex = std::stoull(std::string(v, slash));
            out->partCount = std::stoull(std::string(slash + 1));
            if (out->partCount == 0 ||
                out->partIndex >= out->partCount) {
                std::cerr << "--partition wants I/N with I < N\n";
                return false;
            }
        } else if (arg == "--merge") {
            const char *v = next();
            if (!v)
                return false;
            out->mergeDir = v;
        } else if (arg == "--ranking-out") {
            const char *v = next();
            if (!v)
                return false;
            out->rankingOutPath = v;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else if (!arg.empty() && arg[0] != '-') {
            out->bugId = arg;
        } else {
            std::cerr << "unknown option: " << arg << '\n';
            return false;
        }
    }
    return !out->bugId.empty() || !out->mergeDir.empty();
} catch (const std::exception &) {
    std::cerr << "invalid numeric option value\n";
    return false;
}

void
dumpStatsJson(std::ostream &os, const fleet::Collector &collector,
              const fleet::DurableCollector *durable)
{
    os << "{\n  \"aggregate\": " << collector.stats().toJson();
    if (durable)
        os << ",\n  \"durable\": " << durable->stats().toJson();
    os << ",\n  \"shards\": [\n";
    for (unsigned s = 0; s < collector.shards(); ++s) {
        os << "    " << collector.shardStats(s).toJson()
           << (s + 1 < collector.shards() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

/**
 * The deterministic ranking dump two runs are diffed by: every
 * predictor, full double precision (%.17g survives a round trip),
 * one line each. Equal rankings produce equal files, byte for byte.
 */
void
writeRanking(const std::string &path,
             const std::vector<RankedEvent> &ranking)
{
    std::ofstream os(path, std::ios::trunc);
    for (const RankedEvent &r : ranking) {
        char line[160];
        std::snprintf(
            line, sizeof line,
            "%u %llu %llu %d %.17g %.17g %.17g %llu %llu\n",
            static_cast<unsigned>(r.event.type),
            static_cast<unsigned long long>(r.event.a),
            static_cast<unsigned long long>(r.event.b),
            r.absence ? 1 : 0, r.score, r.precision, r.recall,
            static_cast<unsigned long long>(r.failureRuns),
            static_cast<unsigned long long>(r.successRuns));
        os << line;
    }
}

int
mergeMain(const CliOptions &cli)
{
    fleet::MergeResult merged = fleet::mergeSnapshotDir(cli.mergeDir);
    if (merged.filesMerged == 0) {
        std::cerr << "no decodable snapshots in " << cli.mergeDir
                  << '\n';
        return 1;
    }
    std::cout << "merged " << merged.filesMerged << " snapshots ("
              << merged.filesSkipped << " skipped): "
              << merged.merged.reportCount() << " distinct reports, "
              << merged.merged.failureReports() << " failures, "
              << merged.merged.successReports()
              << " successes, epoch " << merged.merged.epoch()
              << '\n';
    std::vector<RankedEvent> ranking = merged.merged.rank();
    for (std::size_t i = 0; i < ranking.size() && i < cli.top; ++i) {
        const RankedEvent &r = ranking[i];
        // The coordinator has no Program to symbolize against;
        // print the raw event identity.
        std::cout << "  #" << i + 1 << " event(type "
                  << static_cast<unsigned>(r.event.type) << ", a "
                  << r.event.a << ", b " << r.event.b
                  << ")  (precision " << r.precision << ", recall "
                  << r.recall << ", score " << r.score << ")\n";
    }
    if (!cli.rankingOutPath.empty()) {
        writeRanking(cli.rankingOutPath, ranking);
        std::cout << "(ranking written to " << cli.rankingOutPath
                  << ")\n";
    }
    return 0;
}

/**
 * The durable ingest path: capture the fleet's reports (identical in
 * every partition — the capture pipeline is deterministic), ship this
 * partition's slice through a DurableCollector with periodic epoch
 * rolls, and leave the final snapshot on disk for the coordinator.
 */
int
durableMain(const CliOptions &cli, const BugSpec &bug,
            const fleet::FleetOptions &opts)
{
    fleet::DurableOptions durable;
    durable.dir = cli.durableDir;
    durable.collectorId = cli.collectorId;
    durable.collector.shards = opts.shards;
    durable.collector.shardCapacity = opts.shardCapacity;
    durable.collector.overflow = opts.overflow;
    durable.collector.arenaBytes = cli.arenaMb << 20;
    fleet::DurableCollector collector(durable);

    const fleet::RecoveryReport &rec = collector.recovery();
    if (rec.recovered) {
        std::cout << "recovered: snapshot epoch "
                  << rec.snapshotEpoch << " (" << rec.snapshotReports
                  << " reports), " << rec.walRecordsReplayed
                  << " WAL records replayed (tail "
                  << fleet::walStatusName(rec.walTail)
                  << "), resuming at epoch " << rec.resumedEpoch
                  << '\n';
    }

    fleet::FleetCapture capture =
        fleet::captureFleetReports(bug, opts);
    if (!capture.pinned) {
        std::cerr << "fleet capture could not pin a failure site\n";
        return 1;
    }

    std::uint64_t accepted = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t sent = 0;
    for (const fleet::RunProfile &report : capture.reports) {
        if (report.machineId % cli.partCount != cli.partIndex)
            continue;
        std::vector<std::uint8_t> frame = fleet::serialize(report);
        fleet::IngestStatus status = collector.ingest(frame);
        ++sent;
        if (status == fleet::IngestStatus::Duplicate)
            ++duplicates;
        if (status != fleet::IngestStatus::Accepted)
            continue;
        ++accepted;
        if (cli.crashAfter != 0 && accepted >= cli.crashAfter) {
            // The crash: no epoch roll, no WAL flush, no snapshot —
            // whatever the OS has is what recovery gets.
            std::cout << "simulating crash after " << accepted
                      << " accepts\n"
                      << std::flush;
            _exit(42);
        }
        if (cli.epochEvery != 0 && accepted % cli.epochEvery == 0)
            collector.rollEpoch();
    }
    fleet::RankerSnapshot snap = collector.rollEpoch();

    std::cout << "durable collector " << cli.collectorId
              << ": partition " << cli.partIndex << "/"
              << cli.partCount << ", " << sent << " frames sent, "
              << accepted << " accepted, " << duplicates
              << " duplicates, " << snap.reportCount()
              << " reports in snapshot, epoch " << snap.epoch()
              << '\n';

    if (!cli.rankingOutPath.empty()) {
        writeRanking(cli.rankingOutPath,
                     snap.rank(opts.absencePredicates));
        std::cout << "(ranking written to " << cli.rankingOutPath
                  << ")\n";
    }
    if (!cli.statsJsonPath.empty()) {
        std::ofstream os(cli.statsJsonPath);
        dumpStatsJson(os, collector.inner(), &collector);
        std::cout << "(collector metrics written to "
                  << cli.statsJsonPath << ")\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parse(argc, argv, &cli)) {
        usage();
        return 2;
    }

    if (!cli.mergeDir.empty())
        return mergeMain(cli);

    BugSpec bug;
    try {
        bug = corpus::bugById(cli.bugId);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n(use stm_diagnose --list)\n";
        return 1;
    }

    fleet::FleetOptions opts;
    opts.machines = cli.machines;
    opts.shards = cli.shards;
    opts.shardCapacity = cli.capacity;
    opts.overflow = cli.drop ? fleet::OverflowPolicy::Drop
                             : fleet::OverflowPolicy::Block;
    opts.failureProfiles = cli.profiles;
    opts.successProfiles = cli.profiles;
    opts.log.lbrEntries = cli.entries;
    opts.log.lcrEntries = cli.entries;
    opts.log.lcrConfig = cli.conf1 ? lcrConfSpaceSaving()
                                   : lcrConfSpaceConsuming();
    opts.absencePredicates = bug.isConcurrent;
    opts.jobs = cli.jobs;
    opts.duplicateEvery = cli.duplicateEvery;
    opts.corruptEvery = cli.corruptEvery;

    // Records the ingest/drain/rank pipeline; dumps on return.
    tools::TraceCliGuard traceGuard(cli.tracePath);

    if (!cli.durableDir.empty())
        return durableMain(cli, bug, opts);

    fleet::CollectorOptions copts;
    copts.shards = opts.shards;
    copts.shardCapacity = opts.shardCapacity;
    copts.overflow = opts.overflow;
    copts.arenaBytes = cli.arenaMb << 20;
    fleet::Collector collector(copts);

    std::cout << "fleet collection: " << cli.machines
              << " machines -> " << cli.shards
              << " shards, target " << cli.profiles << "+"
              << cli.profiles << " reports (" << bug.id << ")\n";
    fleet::FleetResult result =
        fleet::runFleetDiagnosis(bug, opts, &collector);

    std::cout << "transport: " << result.framesSent << " frames, "
              << result.wireBytes << " payload bytes; "
              << result.duplicates << " duplicates suppressed, "
              << result.decodeErrors << " corrupt frames rejected, "
              << result.dropped << " shed\n";

    if (!result.diagnosed) {
        std::cout << "fleet diagnosis: could not collect enough "
                     "reports\n";
        if (!cli.statsJsonPath.empty()) {
            std::ofstream os(cli.statsJsonPath);
            dumpStatsJson(os, collector, nullptr);
        }
        return 1;
    }

    std::cout << "fleet diagnosis: " << result.failureReports
              << " failure reports (from " << result.failureAttempts
              << " attempts), " << result.successReports
              << " success reports\n";
    for (std::size_t i = 0;
         i < result.ranking.size() && i < cli.top; ++i) {
        const RankedEvent &r = result.ranking[i];
        std::cout << "  #" << i + 1 << ' '
                  << (r.absence ? "[absent] " : "")
                  << r.event.describe(*bug.program)
                  << "  (precision " << r.precision << ", recall "
                  << r.recall << ", score " << r.score << ")\n";
    }

    if (!cli.statsJsonPath.empty()) {
        std::ofstream os(cli.statsJsonPath);
        dumpStatsJson(os, collector, nullptr);
        std::cout << "(collector metrics written to "
                  << cli.statsJsonPath << ")\n";
    }
    return 0;
}
