/**
 * @file
 * stm_collector — the fleet collection service front end.
 *
 *   stm_collector <bug-id> [options]
 *
 * Emulates a fleet of N machines running the monitored program,
 * shipping wire-format LBR/LCR reports through the sharded collector,
 * and ranking failure predictors incrementally as reports arrive
 * (Section 5.2's deployment story, Figure 8). Prints the diagnosis,
 * the transport accounting, and — with --stats-json — the collector's
 * per-shard and aggregate metrics as JSON.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "corpus/registry.hh"
#include "fleet/fleet_sim.hh"
#include "support/logging.hh"
#include "trace_cli.hh"

using namespace stm;

namespace
{

struct CliOptions
{
    std::string bugId;
    std::uint64_t machines = 16;
    unsigned shards = 4;
    std::uint32_t profiles = 10;
    std::size_t entries = 16;
    bool conf1 = false;
    bool drop = false;
    std::size_t capacity = 4096;
    std::size_t arenaMb = 1;
    std::uint32_t duplicateEvery = 3;
    std::uint32_t corruptEvery = 5;
    std::size_t top = 5;
    unsigned jobs = 0;
    std::string statsJsonPath;
    std::string tracePath;
};

void
usage()
{
    std::cout
        << "usage: stm_collector <bug-id> [options]\n\n"
        << "options:\n"
        << "  --machines N      simulated fleet size (default 16)\n"
        << "  --shards N        collector ingest shards (default 4)\n"
        << "  --profiles N      failure/success reports to aggregate "
           "(default 10)\n"
        << "  --entries N       LBR/LCR record depth (default 16)\n"
        << "  --conf1           space-saving LCR configuration\n"
        << "  --ring-slots N    per-shard submission-ring slots, "
           "rounded\n"
           "                    up to a power of two (default 4096)\n"
        << "  --capacity N      alias for --ring-slots (legacy name)\n"
        << "  --arena-mb N      per-producer frame arena size in MiB "
           "(default 1)\n"
        << "  --drop            shed load when a shard is full "
           "(default: block)\n"
        << "  --dup-every N     retransmit every N-th frame "
           "(default 3, 0 = off)\n"
        << "  --corrupt-every N corrupt every N-th frame "
           "(default 5, 0 = off)\n"
        << "  --top N           predictors to print (default 5)\n"
        << "  --jobs N          worker threads (default: STM_JOBS "
           "env, else hardware concurrency)\n"
        << "  --stats-json FILE dump collector metrics as JSON\n"
        << "  --trace FILE      record trace events for the run and\n"
           "                    dump them to FILE (.json = Chrome\n"
           "                    trace_event, else binary STMT)\n";
}

bool
parse(int argc, char **argv, CliOptions *out)
try {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        auto numeric = [&](auto *slot) {
            const char *v = next();
            if (!v)
                return false;
            *slot = static_cast<
                std::remove_pointer_t<decltype(slot)>>(
                std::stoull(v));
            return true;
        };
        if (arg == "--machines") {
            if (!numeric(&out->machines))
                return false;
        } else if (arg == "--shards") {
            if (!numeric(&out->shards))
                return false;
        } else if (arg == "--profiles") {
            if (!numeric(&out->profiles))
                return false;
        } else if (arg == "--entries") {
            if (!numeric(&out->entries))
                return false;
        } else if (arg == "--conf1") {
            out->conf1 = true;
        } else if (arg == "--capacity" || arg == "--ring-slots") {
            if (!numeric(&out->capacity))
                return false;
        } else if (arg == "--arena-mb") {
            if (!numeric(&out->arenaMb))
                return false;
        } else if (arg == "--drop") {
            out->drop = true;
        } else if (arg == "--dup-every") {
            if (!numeric(&out->duplicateEvery))
                return false;
        } else if (arg == "--corrupt-every") {
            if (!numeric(&out->corruptEvery))
                return false;
        } else if (arg == "--top") {
            if (!numeric(&out->top))
                return false;
        } else if (arg == "--jobs") {
            if (!numeric(&out->jobs))
                return false;
        } else if (arg == "--stats-json") {
            const char *v = next();
            if (!v)
                return false;
            out->statsJsonPath = v;
        } else if (arg == "--trace") {
            const char *v = next();
            if (!v)
                return false;
            out->tracePath = v;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else if (!arg.empty() && arg[0] != '-') {
            out->bugId = arg;
        } else {
            std::cerr << "unknown option: " << arg << '\n';
            return false;
        }
    }
    return !out->bugId.empty();
} catch (const std::exception &) {
    std::cerr << "invalid numeric option value\n";
    return false;
}

void
dumpStatsJson(std::ostream &os, const fleet::Collector &collector)
{
    os << "{\n  \"aggregate\": " << collector.stats().toJson()
       << ",\n  \"shards\": [\n";
    for (unsigned s = 0; s < collector.shards(); ++s) {
        os << "    " << collector.shardStats(s).toJson()
           << (s + 1 < collector.shards() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parse(argc, argv, &cli)) {
        usage();
        return 2;
    }

    BugSpec bug;
    try {
        bug = corpus::bugById(cli.bugId);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n(use stm_diagnose --list)\n";
        return 1;
    }

    fleet::FleetOptions opts;
    opts.machines = cli.machines;
    opts.shards = cli.shards;
    opts.shardCapacity = cli.capacity;
    opts.overflow = cli.drop ? fleet::OverflowPolicy::Drop
                             : fleet::OverflowPolicy::Block;
    opts.failureProfiles = cli.profiles;
    opts.successProfiles = cli.profiles;
    opts.log.lbrEntries = cli.entries;
    opts.log.lcrEntries = cli.entries;
    opts.log.lcrConfig = cli.conf1 ? lcrConfSpaceSaving()
                                   : lcrConfSpaceConsuming();
    opts.absencePredicates = bug.isConcurrent;
    opts.jobs = cli.jobs;
    opts.duplicateEvery = cli.duplicateEvery;
    opts.corruptEvery = cli.corruptEvery;

    // Records the ingest/drain/rank pipeline; dumps on return.
    tools::TraceCliGuard traceGuard(cli.tracePath);

    fleet::CollectorOptions copts;
    copts.shards = opts.shards;
    copts.shardCapacity = opts.shardCapacity;
    copts.overflow = opts.overflow;
    copts.arenaBytes = cli.arenaMb << 20;
    fleet::Collector collector(copts);

    std::cout << "fleet collection: " << cli.machines
              << " machines -> " << cli.shards
              << " shards, target " << cli.profiles << "+"
              << cli.profiles << " reports (" << bug.id << ")\n";
    fleet::FleetResult result =
        fleet::runFleetDiagnosis(bug, opts, &collector);

    std::cout << "transport: " << result.framesSent << " frames, "
              << result.wireBytes << " payload bytes; "
              << result.duplicates << " duplicates suppressed, "
              << result.decodeErrors << " corrupt frames rejected, "
              << result.dropped << " shed\n";

    if (!result.diagnosed) {
        std::cout << "fleet diagnosis: could not collect enough "
                     "reports\n";
        if (!cli.statsJsonPath.empty()) {
            std::ofstream os(cli.statsJsonPath);
            dumpStatsJson(os, collector);
        }
        return 1;
    }

    std::cout << "fleet diagnosis: " << result.failureReports
              << " failure reports (from " << result.failureAttempts
              << " attempts), " << result.successReports
              << " success reports\n";
    for (std::size_t i = 0;
         i < result.ranking.size() && i < cli.top; ++i) {
        const RankedEvent &r = result.ranking[i];
        std::cout << "  #" << i + 1 << ' '
                  << (r.absence ? "[absent] " : "")
                  << r.event.describe(*bug.program)
                  << "  (precision " << r.precision << ", recall "
                  << r.recall << ", score " << r.score << ")\n";
    }

    if (!cli.statsJsonPath.empty()) {
        std::ofstream os(cli.statsJsonPath);
        dumpStatsJson(os, collector);
        std::cout << "(collector metrics written to "
                  << cli.statsJsonPath << ")\n";
    }
    return 0;
}
