/**
 * @file
 * stm_diagnose — command-line front end to the diagnosis library.
 *
 *   stm_diagnose --list
 *       enumerate the bug corpus (Table 4)
 *   stm_diagnose <bug-id> [--tool lbrlog|lcrlog|lbra|lcra|cbi|auto]
 *                [--no-toggling] [--entries N] [--conf1]
 *                [--profiles N] [--proactive] [--top N] [--fleet N]
 *       run one diagnosis pipeline on one corpus entry and print the
 *       developer-facing report
 *
 * "auto" (the default) picks LBRA for sequential entries and LCRA for
 * concurrency entries — the way the paper's system would be deployed.
 *
 * --fleet N routes the LBRA/LCRA collection through the fleet
 * pipeline (src/fleet): N simulated machines report wire-format
 * profiles to the sharded collector feeding the streaming ranker.
 * The ranking is identical to the in-process path; see stm_collector
 * for the transport-focused front end.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "baseline/cbi.hh"
#include "corpus/registry.hh"
#include "diag/auto_diag.hh"
#include "diag/log_enhance.hh"
#include "diag/report.hh"
#include "exec/run_cache.hh"
#include "exec/run_pool.hh"
#include "exec/snapshot_store.hh"
#include "fleet/fleet_sim.hh"
#include "support/logging.hh"
#include "trace_cli.hh"

using namespace stm;

namespace
{

struct CliOptions
{
    std::string bugId;
    std::string tool = "auto";
    bool toggling = true;
    std::size_t entries = 16;
    bool conf1 = false;
    std::uint32_t profiles = 10;
    bool proactive = false;
    std::size_t top = 5;
    bool list = false;
    unsigned jobs = 0; //!< 0 = STM_JOBS, else hardware concurrency
    std::uint64_t fleet = 0; //!< 0 = in-process; N = fleet machines
    std::string tracePath;   //!< dump trace events here when set
    bool runCacheSet = false;       //!< --run-cache given
    RunCacheMode runCache = RunCacheMode::Off;
    std::size_t runCacheBytes = 0;  //!< 0 = the cache's default budget
    DispatchMode dispatch = DispatchMode::Auto;
    bool checkpointSet = false;       //!< --checkpoint-every given
    std::uint64_t checkpointEvery = 0; //!< 0 = √T spacing
    std::size_t checkpointBytes = 0;  //!< 0 = the store's default
    bool checkpointReprofile = false; //!< --checkpoint-reprofile
};

DispatchMode
parseDispatch(const std::string &text)
{
    if (text == "auto")
        return DispatchMode::Auto;
    if (text == "threaded")
        return DispatchMode::Threaded;
    if (text == "switch")
        return DispatchMode::Switch;
    fatal("unknown dispatch mode '{}' (want auto|threaded|switch)",
          text);
}

void
usage()
{
    std::cout
        << "usage: stm_diagnose --list\n"
        << "       stm_diagnose <bug-id> [options]\n\n"
        << "options:\n"
        << "  --tool lbrlog|lcrlog|lbra|lcra|cbi|auto  pipeline "
           "(default: auto)\n"
        << "  --no-toggling     disable library toggling "
           "(Section 4.3)\n"
        << "  --entries N       LBR/LCR record depth (default 16)\n"
        << "  --conf1           use the space-saving LCR "
           "configuration\n"
        << "  --profiles N      failure/success profiles for "
           "LBRA/LCRA (default 10)\n"
        << "  --proactive       proactive success-site scheme\n"
        << "  --top N           predictors to print (default 5)\n"
        << "  --jobs N          worker threads for run execution\n"
           "                    (default: STM_JOBS env, else hardware "
           "concurrency;\n"
           "                    results are identical for any N)\n"
        << "  --fleet N         collect LBRA/LCRA profiles from a\n"
           "                    simulated N-machine fleet via the\n"
           "                    wire-format collector (same ranking)\n"
        << "  --trace FILE      record trace events for the run and\n"
           "                    dump them to FILE (.json = Chrome\n"
           "                    trace_event, else binary STMT)\n"
        << "\nrun-execution flags (every mode is result-invariant:\n"
           "the ranking is bit-identical whatever you pick — see\n"
           "README 'Execution knobs'):\n"
        << "  --dispatch MODE   auto|threaded|switch: interpreter\n"
           "                    dispatch loop (default auto =\n"
           "                    threaded where compiled in)\n"
        << "  --run-cache MODE  off|on|verify: memoize identical runs\n"
           "                    (default: STM_RUN_CACHE env, else "
           "off;\n"
           "                    verify re-executes every hit and\n"
           "                    asserts bit-identical results)\n"
        << "  --run-cache-mb N  run-cache byte budget in MiB\n"
           "                    (default: STM_RUN_CACHE_MB, else "
           "256)\n"
        << "  --checkpoint-every N\n"
           "                    record CoW machine checkpoints every\n"
           "                    N steps into the snapshot store so\n"
           "                    replays seek in O(sqrt T) instead of\n"
           "                    re-executing from step 0 (N=0 picks\n"
           "                    sqrt-T spacing; default: the\n"
           "                    STM_CHECKPOINT_EVERY env, else off)\n"
        << "  --checkpoint-mb N snapshot-store byte budget in MiB\n"
           "                    (default: STM_CHECKPOINT_MB, else "
           "256)\n"
        << "  --checkpoint-reprofile\n"
           "                    reactive LBRA/LCRA: re-profile the\n"
           "                    pinning seed under the new plan from\n"
           "                    its latest checkpoint instead of\n"
           "                    waiting for a fresh failing seed\n";
}

bool
parse(int argc, char **argv, CliOptions *out)
try {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--list") {
            out->list = true;
        } else if (arg == "--tool") {
            const char *v = next();
            if (!v)
                return false;
            out->tool = v;
        } else if (arg == "--no-toggling") {
            out->toggling = false;
        } else if (arg == "--entries") {
            const char *v = next();
            if (!v)
                return false;
            out->entries = std::stoul(v);
        } else if (arg == "--conf1") {
            out->conf1 = true;
        } else if (arg == "--profiles") {
            const char *v = next();
            if (!v)
                return false;
            out->profiles = static_cast<std::uint32_t>(std::stoul(v));
        } else if (arg == "--proactive") {
            out->proactive = true;
        } else if (arg == "--top") {
            const char *v = next();
            if (!v)
                return false;
            out->top = std::stoul(v);
        } else if (arg == "--jobs") {
            const char *v = next();
            if (!v)
                return false;
            out->jobs = static_cast<unsigned>(std::stoul(v));
        } else if (arg == "--fleet") {
            const char *v = next();
            if (!v)
                return false;
            out->fleet = std::stoull(v);
        } else if (arg == "--trace") {
            const char *v = next();
            if (!v)
                return false;
            out->tracePath = v;
        } else if (arg == "--run-cache") {
            const char *v = next();
            if (!v)
                return false;
            out->runCache = parseRunCacheMode(v);
            out->runCacheSet = true;
        } else if (arg == "--run-cache-mb") {
            const char *v = next();
            if (!v)
                return false;
            out->runCacheBytes = std::stoul(v) * std::size_t{1024} *
                                 std::size_t{1024};
        } else if (arg == "--dispatch") {
            const char *v = next();
            if (!v)
                return false;
            out->dispatch = parseDispatch(v);
        } else if (arg == "--checkpoint-every") {
            const char *v = next();
            if (!v)
                return false;
            out->checkpointEvery = std::stoull(v);
            out->checkpointSet = true;
        } else if (arg == "--checkpoint-mb") {
            const char *v = next();
            if (!v)
                return false;
            out->checkpointBytes = std::stoul(v) * std::size_t{1024} *
                                   std::size_t{1024};
            out->checkpointSet = true;
        } else if (arg == "--checkpoint-reprofile") {
            out->checkpointReprofile = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else if (!arg.empty() && arg[0] != '-') {
            out->bugId = arg;
        } else {
            std::cerr << "unknown option: " << arg << '\n';
            return false;
        }
    }
    return out->list || !out->bugId.empty();
} catch (const std::exception &) {
    // Non-numeric value for a numeric option (--entries, --profiles,
    // --top, --jobs).
    std::cerr << "invalid numeric option value\n";
    return false;
}

int
listCorpus()
{
    std::cout << "sequential-bug failures:\n";
    for (const BugSpec &bug : corpus::sequentialBugs()) {
        std::cout << "  " << bug.id << "  (" << bug.app << ' '
                  << bug.version << ", "
                  << bugClassName(bug.bugClass) << " -> "
                  << symptomName(bug.symptom) << ")\n";
    }
    std::cout << "concurrency-bug failures:\n";
    for (const BugSpec &bug : corpus::concurrencyBugs()) {
        std::cout << "  " << bug.id << "  (" << bug.app << ' '
                  << bug.version << ", "
                  << interleavingName(bug.interleaving) << " -> "
                  << symptomName(bug.symptom) << ")\n";
    }
    std::cout << "Table 3 micro-bugs:\n";
    for (const BugSpec &bug : corpus::microBugs())
        std::cout << "  " << bug.id << '\n';
    std::cout << "kernel-mode pack:\n";
    for (const BugSpec &bug : corpus::kernelBugs()) {
        std::cout << "  " << bug.id << "  (" << bug.app << ", "
                  << (bug.isConcurrent
                          ? interleavingName(bug.interleaving)
                          : bugClassName(bug.bugClass))
                  << " -> " << symptomName(bug.symptom) << ")\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parse(argc, argv, &cli)) {
        usage();
        return 2;
    }
    if (cli.list)
        return listCorpus();
    if (cli.jobs > 0)
        setDefaultJobs(cli.jobs);
    if (cli.runCacheSet)
        configureRunCache(cli.runCache, cli.runCacheBytes);
    if (cli.checkpointSet || cli.checkpointReprofile)
        configureSnapshotStore(true, cli.checkpointEvery,
                               cli.checkpointBytes);

    BugSpec bug;
    try {
        bug = corpus::bugById(cli.bugId);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n(use --list)\n";
        return 1;
    }

    std::string tool = cli.tool;
    if (tool == "auto")
        tool = bug.isConcurrent ? "lcra" : "lbra";

    // Records the whole pipeline below; dumps on every return path.
    tools::TraceCliGuard traceGuard(cli.tracePath);

    LogEnhanceOptions logOpts;
    logOpts.toggling = cli.toggling;
    logOpts.lbrEntries = cli.entries;
    logOpts.lcrEntries = cli.entries;
    logOpts.lcrConfig = cli.conf1 ? lcrConfSpaceSaving()
                                  : lcrConfSpaceConsuming();

    if (tool == "lbrlog") {
        LbrLogReport report =
            runLbrLog(bug.program, bug.failing, logOpts);
        printLbrLogReport(std::cout, *bug.program, report);
        return report.failed ? 0 : 1;
    }
    if (tool == "lcrlog") {
        LcrLogReport report =
            runLcrLog(bug.program, bug.failing, logOpts);
        printLcrLogReport(std::cout, *bug.program, report);
        return report.failed ? 0 : 1;
    }
    if ((tool == "lbra" || tool == "lcra") && cli.fleet > 0) {
        // The fleet path: same profile budget, but every profile is
        // reported over the wire by one of N simulated machines and
        // aggregated by the sharded collector.
        fleet::FleetOptions opts;
        opts.machines = cli.fleet;
        opts.failureProfiles = cli.profiles;
        opts.successProfiles = cli.profiles;
        opts.log = logOpts;
        opts.kind = tool == "lbra" ? ProfileKind::Lbr
                                   : ProfileKind::Lcr;
        opts.absencePredicates = tool == "lcra";
        opts.scheme = cli.proactive
                          ? transform::SuccessSiteScheme::Proactive
                          : transform::SuccessSiteScheme::Reactive;
        fleet::FleetResult result =
            fleet::runFleetDiagnosis(bug, opts);
        std::cout << "fleet: " << cli.fleet << " machines, "
                  << result.framesSent << " frames ("
                  << result.wireBytes << " bytes), "
                  << result.duplicates << " duplicates suppressed, "
                  << result.decodeErrors << " rejected\n";
        if (!result.diagnosed) {
            std::cout << "fleet diagnosis: could not collect enough "
                         "reports\n";
            return 1;
        }
        std::cout << "fleet diagnosis: " << result.failureReports
                  << " failure reports (from "
                  << result.failureAttempts << " attempts), "
                  << result.successReports << " success reports\n";
        for (std::size_t i = 0;
             i < result.ranking.size() && i < cli.top; ++i) {
            const RankedEvent &r = result.ranking[i];
            std::cout << "  #" << i + 1 << ' '
                      << (r.absence ? "[absent] " : "")
                      << r.event.describe(*bug.program)
                      << "  (precision " << r.precision
                      << ", recall " << r.recall << ", score "
                      << r.score << ")\n";
        }
        return 0;
    }
    if (tool == "lbra" || tool == "lcra") {
        AutoDiagOptions opts;
        opts.log = logOpts;
        opts.failureProfiles = cli.profiles;
        opts.successProfiles = cli.profiles;
        opts.absencePredicates = tool == "lcra";
        opts.scheme = cli.proactive
                          ? transform::SuccessSiteScheme::Proactive
                          : transform::SuccessSiteScheme::Reactive;
        opts.dispatch = cli.dispatch;
        opts.checkpointReprofile = cli.checkpointReprofile;
        AutoDiagResult result =
            tool == "lbra"
                ? runLbra(bug.program, bug.failing, bug.succeeding,
                          opts)
                : runLcra(bug.program, bug.failing, bug.succeeding,
                          opts);
        printRanking(std::cout, *bug.program, result, cli.top);
        return result.diagnosed ? 0 : 1;
    }
    if (tool == "cbi") {
        if (bug.isCpp) {
            std::cerr << "CBI cannot instrument C++ applications "
                         "(Table 6: N/A)\n";
            return 1;
        }
        CbiResult result =
            runCbi(bug.program, bug.failing, bug.succeeding);
        if (!result.completed) {
            std::cout << "CBI: not enough runs completed\n";
            return 1;
        }
        std::cout << "CBI top predictors (" << result.failureRunsUsed
                  << '+' << result.successRunsUsed << " runs):\n";
        for (std::size_t i = 0;
             i < result.ranking.size() && i < cli.top; ++i) {
            const CbiPredicateScore &p = result.ranking[i];
            const SourceBranchInfo &info =
                bug.program->branch(p.branch);
            std::cout << "  #" << i + 1 << " branch '" << info.note
                      << "' = " << (p.outcome ? "true" : "false")
                      << "  (importance " << p.score.importance
                      << ")\n";
        }
        return 0;
    }
    std::cerr << "unknown tool '" << cli.tool << "'\n";
    usage();
    return 2;
}
