/**
 * @file
 * stm_trace — record, inspect, and export trace-event dumps.
 *
 *   stm_trace record <bug-id> [options] --out FILE
 *       run one LBRA/LCRA diagnosis with tracing enabled and dump the
 *       per-thread trace rings (binary .stmt, or Chrome JSON when the
 *       output path ends in .json)
 *   stm_trace dump FILE [--json] [--limit N]
 *       decode a binary dump and print the events (or re-export as
 *       Chrome trace_event JSON with --json)
 *   stm_trace stats FILE
 *       aggregate a binary dump into the per-seam table: counts,
 *       matched-span wall time, orphaned span ends
 *
 * The recorder mirrors the paper's hardware rings: each thread keeps
 * only the most recent events, so a dump is the "short-term memory"
 * of the diagnosis run itself. See src/obs/trace.hh.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "corpus/registry.hh"
#include "diag/auto_diag.hh"
#include "exec/run_pool.hh"
#include "fleet/fleet_sim.hh"
#include "obs/trace.hh"
#include "obs/trace_io.hh"
#include "support/logging.hh"

using namespace stm;

namespace
{

struct CliOptions
{
    std::string command;
    std::string bugId;   //!< record
    std::string inPath;  //!< dump / stats
    std::string outPath; //!< record / dump --json
    std::string tool = "auto";
    std::uint32_t profiles = 10;
    std::uint64_t fleet = 0;
    std::size_t capacity = 0; //!< 0 = recorder default
    std::size_t limit = 0;    //!< dump: max events printed (0 = all)
    unsigned jobs = 0;
    bool json = false;
};

void
usage()
{
    std::cout
        << "usage: stm_trace record <bug-id> [options] --out FILE\n"
        << "       stm_trace dump FILE [--json] [--limit N] "
           "[--out FILE]\n"
        << "       stm_trace stats FILE\n\n"
        << "record options:\n"
        << "  --tool lbra|lcra|auto  diagnosis pipeline "
           "(default: auto)\n"
        << "  --profiles N      failure/success profiles "
           "(default 10)\n"
        << "  --fleet N         route collection through an "
           "N-machine fleet\n"
        << "  --capacity N      per-thread trace ring capacity "
           "(events)\n"
        << "  --jobs N          worker threads (default: STM_JOBS "
           "env)\n"
        << "  --out FILE        dump destination; .json selects the\n"
        << "                    Chrome trace_event format, anything\n"
        << "                    else the binary STMT format\n";
}

bool
parse(int argc, char **argv, CliOptions *out)
try {
    if (argc < 2)
        return false;
    out->command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        auto numeric = [&](auto *slot) {
            const char *v = next();
            if (!v)
                return false;
            *slot = static_cast<
                std::remove_pointer_t<decltype(slot)>>(
                std::stoull(v));
            return true;
        };
        if (arg == "--tool") {
            const char *v = next();
            if (!v)
                return false;
            out->tool = v;
        } else if (arg == "--profiles") {
            if (!numeric(&out->profiles))
                return false;
        } else if (arg == "--fleet") {
            if (!numeric(&out->fleet))
                return false;
        } else if (arg == "--capacity") {
            if (!numeric(&out->capacity))
                return false;
        } else if (arg == "--limit") {
            if (!numeric(&out->limit))
                return false;
        } else if (arg == "--jobs") {
            if (!numeric(&out->jobs))
                return false;
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return false;
            out->outPath = v;
        } else if (arg == "--json") {
            out->json = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else if (!arg.empty() && arg[0] != '-') {
            if (out->command == "record")
                out->bugId = arg;
            else
                out->inPath = arg;
        } else {
            std::cerr << "unknown option: " << arg << '\n';
            return false;
        }
    }
    if (out->command == "record")
        return !out->bugId.empty() && !out->outPath.empty();
    if (out->command == "dump" || out->command == "stats")
        return !out->inPath.empty();
    return false;
} catch (const std::exception &) {
    std::cerr << "invalid numeric option value\n";
    return false;
}

bool
wantsJson(const std::string &path)
{
    return path.size() >= 5 &&
           path.compare(path.size() - 5, 5, ".json") == 0;
}

/** Write @p events to @p path in the format the suffix selects. */
int
writeDump(const std::string &path,
          const std::vector<obs::TraceEvent> &events)
{
    if (wantsJson(path)) {
        std::ofstream os(path, std::ios::binary);
        os << obs::chromeTraceJson(events);
        if (!os) {
            std::cerr << "stm_trace: cannot write " << path << '\n';
            return 1;
        }
        std::cout << "trace: " << events.size() << " events -> "
                  << path << " (chrome trace_event JSON)\n";
        return 0;
    }
    obs::TraceIoStatus st = obs::writeTraceFile(path, events);
    if (st != obs::TraceIoStatus::Ok) {
        std::cerr << "stm_trace: cannot write " << path << " ("
                  << obs::traceIoStatusName(st) << ")\n";
        return 1;
    }
    std::cout << "trace: " << events.size() << " events -> " << path
              << " (binary STMT v" << obs::kTraceVersion << ")\n";
    return 0;
}

int
cmdRecord(const CliOptions &cli)
{
    BugSpec bug;
    try {
        bug = corpus::bugById(cli.bugId);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n(use stm_diagnose --list)\n";
        return 1;
    }
    std::string tool = cli.tool;
    if (tool == "auto")
        tool = bug.isConcurrent ? "lcra" : "lbra";
    if (tool != "lbra" && tool != "lcra") {
        std::cerr << "unknown tool '" << cli.tool << "'\n";
        return 2;
    }
    if (cli.jobs > 0)
        setDefaultJobs(cli.jobs);
    if (cli.capacity > 0)
        obs::setTraceCapacity(cli.capacity);

    obs::clearTrace();
    obs::setTracingEnabled(true);
    bool diagnosed = false;
    if (cli.fleet > 0) {
        fleet::FleetOptions opts;
        opts.machines = cli.fleet;
        opts.failureProfiles = cli.profiles;
        opts.successProfiles = cli.profiles;
        opts.kind =
            tool == "lbra" ? ProfileKind::Lbr : ProfileKind::Lcr;
        opts.absencePredicates = tool == "lcra";
        diagnosed = fleet::runFleetDiagnosis(bug, opts).diagnosed;
    } else {
        AutoDiagOptions opts;
        opts.failureProfiles = cli.profiles;
        opts.successProfiles = cli.profiles;
        opts.absencePredicates = tool == "lcra";
        AutoDiagResult result =
            tool == "lbra"
                ? runLbra(bug.program, bug.failing, bug.succeeding,
                          opts)
                : runLcra(bug.program, bug.failing, bug.succeeding,
                          opts);
        diagnosed = result.diagnosed;
    }
    obs::setTracingEnabled(false);

    std::vector<obs::TraceEvent> events = obs::collectTrace();
    std::cout << "recorded " << obs::traceEventsRecorded()
              << " events across " << obs::traceThreadCount()
              << " threads (" << events.size() << " retained, "
              << (diagnosed ? "diagnosed" : "not diagnosed") << ")\n";
    return writeDump(cli.outPath, events);
}

int
readDump(const std::string &path, std::vector<obs::TraceEvent> *out)
{
    obs::TraceIoStatus st = obs::readTraceFile(path, out);
    if (st != obs::TraceIoStatus::Ok) {
        std::cerr << "stm_trace: " << path << ": "
                  << obs::traceIoStatusName(st) << '\n';
        return 1;
    }
    return 0;
}

int
cmdDump(const CliOptions &cli)
{
    std::vector<obs::TraceEvent> events;
    if (int rc = readDump(cli.inPath, &events))
        return rc;
    if (!cli.outPath.empty())
        return writeDump(cli.outPath, events);
    if (cli.json) {
        std::cout << obs::chromeTraceJson(events) << '\n';
        return 0;
    }
    const char *phases[] = {"i", "B", "E"};
    std::size_t shown = 0;
    for (const obs::TraceEvent &e : events) {
        if (cli.limit > 0 && shown >= cli.limit) {
            std::cout << "... (" << events.size() - shown
                      << " more)\n";
            break;
        }
        std::cout << e.tsc << " t" << e.tid << ' '
                  << phases[static_cast<int>(e.phase)] << ' '
                  << obs::traceIdName(e.id) << " arg=" << e.arg
                  << '\n';
        ++shown;
    }
    return 0;
}

int
cmdStats(const CliOptions &cli)
{
    std::vector<obs::TraceEvent> events;
    if (int rc = readDump(cli.inPath, &events))
        return rc;
    std::cout << cli.inPath << ": " << events.size() << " events\n"
              << obs::traceStatsTable(events);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parse(argc, argv, &cli)) {
        usage();
        return 2;
    }
    if (cli.command == "record")
        return cmdRecord(cli);
    if (cli.command == "dump")
        return cmdDump(cli);
    if (cli.command == "stats")
        return cmdStats(cli);
    std::cerr << "unknown command '" << cli.command << "'\n";
    usage();
    return 2;
}
