/**
 * @file
 * Shared `--trace FILE` plumbing for the CLI front ends.
 *
 * A tool that takes --trace enables the recorder for the scope of the
 * guard and dumps the collected events on the way out — on every exit
 * path, including early returns for failed diagnoses. A path ending
 * in .json selects the Chrome trace_event export; anything else gets
 * the binary STMT dump (inspect with `stm_trace dump|stats`).
 */

#ifndef STM_TOOLS_TRACE_CLI_HH
#define STM_TOOLS_TRACE_CLI_HH

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "obs/trace_io.hh"

namespace stm::tools
{

/** RAII --trace handler: enable on construction, dump on scope exit. */
class TraceCliGuard
{
  public:
    explicit TraceCliGuard(std::string path) : path_(std::move(path))
    {
        if (path_.empty())
            return;
        obs::clearTrace();
        obs::setTracingEnabled(true);
    }

    ~TraceCliGuard()
    {
        if (path_.empty())
            return;
        obs::setTracingEnabled(false);
        std::vector<obs::TraceEvent> events = obs::collectTrace();
        if (path_.size() >= 5 &&
            path_.compare(path_.size() - 5, 5, ".json") == 0) {
            std::ofstream os(path_, std::ios::binary);
            os << obs::chromeTraceJson(events);
            if (!os) {
                std::cerr << "cannot write trace to " << path_
                          << '\n';
                return;
            }
        } else if (obs::writeTraceFile(path_, events) !=
                   obs::TraceIoStatus::Ok) {
            std::cerr << "cannot write trace to " << path_ << '\n';
            return;
        }
        std::cout << "(trace: " << events.size() << " events -> "
                  << path_ << ")\n";
    }

    TraceCliGuard(const TraceCliGuard &) = delete;
    TraceCliGuard &operator=(const TraceCliGuard &) = delete;

  private:
    std::string path_;
};

} // namespace stm::tools

#endif // STM_TOOLS_TRACE_CLI_HH
